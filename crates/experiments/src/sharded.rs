//! Sharded parallel DES: multi-core execution of *one* run.
//!
//! [`run_scenario_des`](crate::runner::run_scenario_des) executes a whole
//! scenario on one core. This module splits the node population across `K`
//! shards — the same `index % K` partition rule the real cluster runtime
//! uses (`crates/node`) — and runs the shards on worker threads that
//! synchronize at **tick barriers**:
//!
//! * every shard owns a full event core ([`Network`]: timing wheel,
//!   payload pool, private latency/loss stream) plus its own protocol
//!   instance and derived RNG stream;
//! * a message between co-hosted nodes stays entirely inside its shard;
//! * a cross-shard send is routed through
//!   [`Network::route_remote`], which clamps its latency to **≥ 1 tick**
//!   — that lookahead is what makes the synchronization *conservative*:
//!   nothing a shard does during tick `T` can affect another shard before
//!   tick `T + 1`, so all shards may execute tick `T` in parallel;
//! * at the barrier, buffered cross-shard messages are exchanged through
//!   [`ExchangeGrid`] and enqueued at the destination in
//!   **(source-shard-index, FIFO)** order — a fixed merge order, so the
//!   destination wheel's structural FIFO makes same-tick remote arrivals
//!   deterministic.
//!
//! ## Determinism boundary
//!
//! A `K`-shard run is byte-identical across reruns **and across worker
//! thread counts** — each shard's tick execution depends only on its own
//! state, the published round plan and the (read-locked) overlay, never on
//! scheduling. `K` itself, however, is part of the result identity: a
//! `K`-shard run partitions the RNG streams differently than a single
//! queue (exactly like the node-count of a real cluster, whose estimates
//! are validated against the DES *envelope*, not bit-for-bit). `K = 1`
//! never reaches this module: the engine falls back to the sequential
//! driver, keeping every golden figure and trace byte-identical.
//!
//! Because the lookahead clamp turns a zero-latency cross-shard hop into a
//! one-tick hop, sharded execution is meant for latency-realistic models
//! (e.g. [`NetworkModel::wan`](p2p_sim::NetworkModel::wan), where every
//! hop already takes ≥ 1 tick and the clamp changes nothing). Under the
//! paper's ideal instantaneous model a chain of cross-shard hops stretches
//! across ticks — still a valid execution, but far from the historic
//! round semantics.

use crate::runner::{
    Trace, WorkloadRuntime, {TelemetryOpts, TelemetrySession, NET_SEED_STREAM},
};
use crate::scenario::Scenario;
use p2p_estimation::net_protocol::{dispatch_routed, Cx, ShardRoute};
use p2p_estimation::{Heuristic, NodeProtocol, ShardView, Smoother, StepOutcome};
use p2p_overlay::Graph;
use p2p_sim::network::NetEvent;
use p2p_sim::parallel::default_threads;
use p2p_sim::rng::{derive_seed, small_rng};
use p2p_sim::shard::{ExchangeGrid, Inbox, Outbox};
use p2p_sim::{EngineStats, MessageCounter, NetStats, Network, SimTime};
use p2p_stats::Series;
use p2p_telemetry::Snapshot;
use rand::rngs::SmallRng;
use std::sync::{Barrier, Mutex, RwLock};

/// The stream each shard's protocol RNG derives from — the same constant
/// (and the same double derivation `derive(derive(seed, this), shard)`)
/// as the real cluster runtime (`crates/node`), so a DES shard and a
/// cluster shard with the same index draw identical protocol streams.
pub(crate) const SHARD_PROTO_SEED_STREAM: u64 = 0x0073_6861_7264; // "shard"

/// The stream the estimator-node choice derives from — again mirroring
/// the cluster runtime: one uniform alive draw picks the node that leads
/// estimations, and only the shard hosting it gets `estimator: Some(..)`.
pub(crate) const ESTIMATOR_SEED_STREAM: u64 = 0x0065_7374_696D; // "estim"

/// Sharded execution parameters for one run.
#[derive(Clone, Copy, Debug)]
pub struct ShardOpts {
    /// Number of shards `K ≥ 2` (`K` is part of the result identity).
    pub shards: u32,
    /// Worker threads; defaults to `min(K, cores)`. Never affects the
    /// produced bytes — only wall-clock.
    pub workers: Option<usize>,
}

/// The per-round execution order published to the workers at the barrier.
#[derive(Clone, Copy)]
struct Plan {
    /// The tick every shard executes this round.
    tick: u64,
    /// `Some(s)` when this round's tick is protocol step `s`'s boundary.
    step: Option<u64>,
    /// Termination signal: workers exit instead of executing a tick.
    done: bool,
}

/// One shard's complete run state. Each lives behind its own `Mutex`: a
/// worker locks it for the duration of the shard's tick, the coordinator
/// between barriers — never both at once, so every lock is uncontended.
struct ShardState<P: NodeProtocol> {
    proto: P,
    net: Network<P::Msg>,
    rng: SmallRng,
    view: ShardView,
    outbox: Outbox<P::Msg>,
    inbox: Inbox<P::Msg>,
    reports: Vec<StepOutcome>,
    batch: Vec<NetEvent<P::Msg>>,
    tel: Option<TelemetrySession>,
}

/// Executes one shard's slice of tick `plan.tick`: enqueue the remote
/// arrivals exchanged at the previous barrier, park the clock on the tick,
/// run the protocol step if this round carries one, then drain every event
/// up to (and including) the tick. Cross-shard sends land in the outbox.
fn run_shard_tick<P: NodeProtocol>(st: &mut ShardState<P>, plan: Plan, graph: &Graph) {
    let ShardState {
        proto,
        net,
        rng,
        view,
        outbox,
        inbox,
        reports,
        batch,
        tel,
    } = st;
    inbox.drain(|m| net.enqueue_remote(m));
    net.advance_to(SimTime(plan.tick));
    if let Some(step) = plan.step {
        let route = ShardRoute {
            view: *view,
            outbox,
        };
        let mut cx = Cx::with_route(graph, net, rng, reports, route);
        proto.on_step(step, &mut cx);
    }
    while net.pop_batch_until(SimTime(plan.tick), batch).is_some() {
        if let Some(t) = tel.as_mut() {
            t.observe_batch(batch.len());
        }
        for event in batch.drain(..) {
            let route = ShardRoute {
                view: *view,
                outbox,
            };
            dispatch_routed(proto, event, graph, net, rng, reports, route);
        }
    }
}

/// Runs one scenario on `opts.shards` parallel event cores.
///
/// `make(shard, view)` builds shard `shard`'s protocol instance; it must
/// install `Deployment::Shard(view)` so the instance paces only hosted
/// slots (the engine's entry points do this for every spec-built
/// protocol). Reports are collected in (shard-index, FIFO) order at each
/// barrier; per-shard engine/network accounting is folded into the
/// returned [`Trace`] in the same fixed order, so `[stats]` totals cover
/// the whole run.
pub fn run_scenario_des_sharded<P, F>(
    make: F,
    scenario: &Scenario,
    heuristic: Heuristic,
    seed: u64,
    series_name: impl Into<String>,
    opts: ShardOpts,
    telemetry: Option<TelemetryOpts>,
) -> (Trace, Vec<Snapshot>)
where
    P: NodeProtocol + Send,
    P::Msg: Send,
    F: Fn(u32, ShardView) -> P,
{
    let k = opts.shards;
    assert!(
        k >= 2,
        "sharded execution needs K ≥ 2 (K = 1 is the sequential driver)"
    );
    let series_name = series_name.into();
    let workers = opts
        .workers
        .unwrap_or_else(|| default_threads(k as usize))
        .clamp(1, k as usize);

    let mut rng = small_rng(seed);
    let graph = scenario.build_overlay(&mut rng);
    let mut smoother = Smoother::new(heuristic);
    let step_ticks = scenario.network.step_ticks;
    let mut workload = scenario
        .workload
        .as_ref()
        .map(|source| WorkloadRuntime::new(source, scenario, seed));
    if let Some(w) = workload.as_mut() {
        w.on_init(&graph);
    }

    // One estimator node leads estimations for the whole run, exactly as
    // in a deployed cluster; its hosting shard gets `estimator: Some`.
    let mut est_rng = small_rng(derive_seed(seed, ESTIMATOR_SEED_STREAM));
    let estimator = graph.random_alive(&mut est_rng);

    let proto_base = derive_seed(seed, SHARD_PROTO_SEED_STREAM);
    let net_base = derive_seed(seed, NET_SEED_STREAM);
    let mut states: Vec<Mutex<ShardState<P>>> = (0..k)
        .map(|s| {
            let view = ShardView {
                proc: s,
                procs: k,
                estimator: estimator.filter(|n| n.index() as u32 % k == s),
            };
            Mutex::new(ShardState {
                proto: make(s, view),
                net: Network::new(scenario.network, derive_seed(net_base, s as u64)),
                rng: small_rng(derive_seed(proto_base, s as u64)),
                view,
                outbox: Outbox::new(k as usize),
                inbox: Inbox::new(k as usize),
                reports: Vec::new(),
                batch: Vec::new(),
                tel: telemetry.map(|o| TelemetrySession::new(o, series_name.clone())),
            })
        })
        .collect();

    let mut grid: ExchangeGrid<P::Msg> = ExchangeGrid::new(k as usize);

    // Per-shard protocol init, then one exchange so init-time cross-shard
    // sends are visible to the first round's horizon computation.
    for st in &mut states {
        let st = st.get_mut().unwrap();
        let route = ShardRoute {
            view: st.view,
            outbox: &mut st.outbox,
        };
        let mut cx = Cx::with_route(&graph, &mut st.net, &mut st.rng, &mut st.reports, route);
        st.proto.on_init(&mut cx);
    }
    for (s, st) in states.iter_mut().enumerate() {
        grid.collect(s, &mut st.get_mut().unwrap().outbox);
    }
    for (d, st) in states.iter_mut().enumerate() {
        grid.deliver(d, &mut st.get_mut().unwrap().inbox);
    }

    // Control ticks: the step grid plus any scheduled churn outside it.
    let mut ctrl: Vec<u64> = (1..=scenario.steps).collect();
    for &(s, _) in &scenario.schedule {
        if s == 0 || s > scenario.steps {
            ctrl.push(s);
        }
    }
    ctrl.sort_unstable();
    ctrl.dedup();
    let mut ctrl_idx = 0usize;

    let mut coord_tel = telemetry.map(|o| TelemetrySession::new(o, series_name.clone()));
    let mut estimates = Series::new(series_name);
    let mut real_size = Series::new("real size");
    let mut completed = 0usize;
    let mut current_step = 0u64;

    let graph_lock = RwLock::new(graph);
    let plan = Mutex::new(Plan {
        tick: 0,
        step: None,
        done: false,
    });
    let start = Barrier::new(workers + 1);
    let end = Barrier::new(workers + 1);

    std::thread::scope(|scope| {
        let states = &states;
        let graph_lock = &graph_lock;
        let plan = &plan;
        let start = &start;
        let end = &end;
        for w in 0..workers {
            scope.spawn(move || loop {
                start.wait();
                let p = *plan.lock().unwrap();
                if p.done {
                    return;
                }
                let graph = graph_lock.read().unwrap();
                let mut i = w;
                while i < k as usize {
                    run_shard_tick(&mut states[i].lock().unwrap(), p, &graph);
                    i += workers;
                }
                drop(graph);
                end.wait();
            });
        }

        // Coordinator: picks each round's tick, applies churn, releases the
        // workers, then harvests reports and runs the cross-shard exchange.
        loop {
            let ctrl_tick = ctrl.get(ctrl_idx).map(|&s| s * step_ticks);
            let mut next: Option<u64> = ctrl_tick;
            for st in states.iter() {
                let st = st.lock().unwrap();
                for t in [st.net.next_event_time(), st.inbox.min_at()]
                    .into_iter()
                    .flatten()
                {
                    next = Some(next.map_or(t.0, |n| n.min(t.0)));
                }
            }
            let Some(tick) = next else { break };

            let mut step_of_round = None;
            if ctrl_tick == Some(tick) {
                let s = ctrl[ctrl_idx];
                ctrl_idx += 1;
                let mut graph = graph_lock.write().unwrap();
                for (at, op) in &scenario.schedule {
                    if *at == s {
                        match workload.as_mut() {
                            Some(w) => w.observe_scheduled(s, op, &mut graph, &mut rng),
                            None => {
                                op.apply(&mut graph, &mut rng);
                            }
                        }
                    }
                }
                if (1..=scenario.steps).contains(&s) {
                    if let Some(w) = workload.as_mut() {
                        w.step(s, &mut graph, &mut rng);
                    }
                    current_step = s;
                    step_of_round = Some(s);
                }
            }

            *plan.lock().unwrap() = Plan {
                tick,
                step: step_of_round,
                done: false,
            };
            start.wait();
            // Workers execute the tick on every shard.
            end.wait();

            let graph = graph_lock.read().unwrap();
            let truth = graph.alive_count() as f64;
            for st in states.iter() {
                let mut st = st.lock().unwrap();
                for outcome in st.reports.drain(..) {
                    let x = current_step.max(1) as f64;
                    if let Some(raw) = outcome.estimate() {
                        estimates.push(x, smoother.apply(raw));
                        completed += 1;
                        if let Some(t) = coord_tel.as_mut() {
                            t.on_report(raw, truth, current_step);
                        }
                    }
                    if outcome.is_report() {
                        real_size.push(x, truth);
                    }
                }
            }
            if let Some(t) = coord_tel.as_mut() {
                if let Some(s) = step_of_round {
                    if s.is_multiple_of(t.opts.every) && s != scenario.steps {
                        t.sample_overlay(&graph);
                        t.snapshot_now(s);
                        for st in states.iter() {
                            let mut st = st.lock().unwrap();
                            let ShardState { net, tel, .. } = &mut *st;
                            let tel = tel.as_mut().expect("every shard captures telemetry");
                            tel.sample_core(net);
                            tel.snapshot_now(s);
                        }
                    }
                }
            }
            drop(graph);

            // The tick barrier's second half: exchange cross-shard traffic
            // in (source-shard-index, FIFO) order.
            for (s, st) in states.iter().enumerate() {
                grid.collect(s, &mut st.lock().unwrap().outbox);
            }
            for (d, st) in states.iter().enumerate() {
                grid.deliver(d, &mut st.lock().unwrap().inbox);
            }
        }

        plan.lock().unwrap().done = true;
        start.wait();
    });

    if let Some(w) = workload.as_mut() {
        w.finish();
    }
    let graph = graph_lock.into_inner().unwrap();
    debug_assert!(graph.check_invariants().is_ok());

    // Final post-drain snapshot, then fold per-shard sessions into the
    // coordinator's — identical metric sets, fixed shard-index order.
    if let Some(t) = coord_tel.as_mut() {
        t.sample_overlay(&graph);
        t.snapshot_now(scenario.steps);
    }
    let mut states: Vec<ShardState<P>> = states
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    let mut snapshots = coord_tel.map(|t| t.snapshots).unwrap_or_default();
    let mut messages = MessageCounter::new();
    let mut net_stats = NetStats::default();
    let mut engine_stats = EngineStats::default();
    for st in &mut states {
        debug_assert!(st.outbox.is_empty() && st.inbox.is_empty());
        if let Some(tel) = st.tel.as_mut() {
            tel.sample_core(&st.net);
            tel.snapshot_now(scenario.steps);
            debug_assert_eq!(tel.snapshots.len(), snapshots.len());
            for (dst, src) in snapshots.iter_mut().zip(&tel.snapshots) {
                dst.merge_from(src)
                    .expect("shard sessions register identical metric sets");
            }
        }
        messages.merge(&st.net.take_counter());
        net_stats.merge_from(st.net.stats());
        engine_stats.merge_from(&st.net.engine_stats());
    }

    let trace = Trace {
        estimates,
        real_size,
        messages,
        completed,
        net: net_stats,
        engine: engine_stats,
    };
    (trace, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_estimation::net_protocol::{AsyncAggregation, AsyncSampleCollide};
    use p2p_estimation::spec::AsyncProtocol;
    use p2p_estimation::{Deployment, ProtocolSpec};
    use p2p_sim::NetworkModel;

    /// A small WAN scenario: realistic latencies, so the ≥ 1 tick
    /// cross-shard clamp changes nothing about hop timing.
    fn wan_scenario(n: usize, steps: u64) -> Scenario {
        Scenario::static_network(n, steps).with_network(NetworkModel::wan())
    }

    fn make_agg(view: ShardView) -> AsyncAggregation {
        let mut p = AsyncAggregation::paper();
        p.deployment = Deployment::Shard(view);
        p
    }

    fn run_agg(k: u32, workers: Option<usize>, seed: u64) -> (Trace, Vec<Snapshot>) {
        let scenario = wan_scenario(2_000, 60);
        run_scenario_des_sharded(
            |_, view| make_agg(view),
            &scenario,
            Heuristic::OneShot,
            seed,
            "agg",
            ShardOpts { shards: k, workers },
            Some(TelemetryOpts {
                every: 20,
                eps: 0.5,
            }),
        )
    }

    fn fingerprint(trace: &Trace, snaps: &[Snapshot]) -> String {
        let mut s = format!("{trace:?}");
        for snap in snaps {
            s.push('\n');
            s.push_str(&snap.to_jsonl());
        }
        s
    }

    #[test]
    fn sharded_runs_are_byte_identical_across_reruns_and_worker_counts() {
        let (t1, s1) = run_agg(4, Some(1), 77);
        let (t2, s2) = run_agg(4, Some(2), 77);
        let (t3, s3) = run_agg(4, Some(3), 77);
        let (t4, s4) = run_agg(4, None, 77);
        let base = fingerprint(&t1, &s1);
        assert_eq!(base, fingerprint(&t2, &s2), "1 vs 2 workers");
        assert_eq!(base, fingerprint(&t3, &s3), "1 vs 3 workers");
        assert_eq!(base, fingerprint(&t4, &s4), "1 vs default workers");
        // And across reruns at the same worker count.
        let (t5, s5) = run_agg(4, Some(2), 77);
        assert_eq!(base, fingerprint(&t5, &s5), "rerun");
    }

    #[test]
    fn shard_count_is_part_of_the_result_identity() {
        let (t2, _) = run_agg(2, None, 77);
        let (t4, _) = run_agg(4, None, 77);
        // Different K ⇒ different (valid) realization — pinning the
        // opposite would quietly forbid the partitioned RNG streams.
        assert_ne!(
            format!("{:?}", t2.estimates.points),
            format!("{:?}", t4.estimates.points)
        );
    }

    #[test]
    fn sharded_aggregation_tracks_the_truth() {
        for k in [2, 3] {
            let (trace, _) = run_agg(k, None, 909);
            assert!(trace.completed >= 1, "K={k}: no epoch completed");
            let (_, last) = *trace.estimates.points.last().unwrap();
            let q = last / 2_000.0;
            assert!((0.8..1.2).contains(&q), "K={k}: estimate quality {q}");
        }
    }

    #[test]
    fn merged_stats_cover_the_whole_run() {
        let (trace, snaps) = run_agg(2, None, 31);
        // Whole-run totals, not shard 0's view: the per-kind counter and
        // the merged NetStats must agree, and everything sent was resolved
        // (delivered, dropped, or lost to churn — here: delivered).
        assert_eq!(trace.messages.total(), trace.net.sent);
        assert_eq!(
            trace.net.sent,
            trace.net.delivered + trace.net.dropped + trace.net.churn_lost
        );
        assert!(trace.engine.dispatched > 0);
        // The folded final snapshot agrees with the merged trace.
        let last = snaps.last().unwrap();
        let get = |name: &str| {
            last.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .1
        };
        assert_eq!(get("net.sent"), trace.net.sent);
        assert_eq!(get("net.delivered"), trace.net.delivered);
        assert_eq!(get("engine.dispatched"), trace.engine.dispatched);
        assert_eq!(get("proto.reports"), trace.completed as u64);
    }

    #[test]
    fn spec_built_protocols_run_sharded() {
        // The engine's per-variant closures are exercised end to end in
        // `engine::tests`; here pin that a spec-built walk protocol
        // survives partitioning (walks hop across shards constantly).
        let spec = ProtocolSpec::parse("sample-collide:l=40,t=4").unwrap();
        let scenario = wan_scenario(600, 8);
        let make = |_: u32, view: ShardView| match spec.build_async() {
            AsyncProtocol::SampleCollide(mut p) => {
                p.deployment = Deployment::Shard(view);
                p
            }
            _ => unreachable!(),
        };
        let (trace, _) = run_scenario_des_sharded::<AsyncSampleCollide, _>(
            make,
            &scenario,
            Heuristic::OneShot,
            5,
            "sc",
            ShardOpts {
                shards: 3,
                workers: None,
            },
            None,
        );
        assert!(trace.net.sent > 0);
        assert_eq!(trace.messages.total(), trace.net.sent);
    }
}
