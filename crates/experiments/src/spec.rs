//! Declarative experiment specifications — experiments as *data*.
//!
//! The paper's evaluation is a cross-product: algorithm classes ×
//! {static, growing, shrinking, catastrophic} × overlay families × network
//! models × scales. An [`ExperimentSpec`] writes one cell (or one swept
//! row) of that product down as a value: which protocols
//! ([`p2p_estimation::ProtocolSpec`]), over which [`Scenario`], how many
//! replications, swept along which [`SweepAxis`], and presented how
//! ([`Presentation`]). One generic engine ([`crate::engine`]) executes any
//! spec; the 20 paper figures are just registered specs
//! ([`crate::figures`]), and the `repro` CLI assembles free-form specs the
//! paper never drew.
//!
//! [`ScenarioSpec`] and [`NetworkSpec`] are the parseable front-ends
//! (hand-rolled `key=value` grammar shared with `ProtocolSpec`) that the
//! CLI resolves into a concrete [`Scenario`].

use crate::scenario::{Scenario, Topology};
use p2p_estimation::spec::{parse_params, parse_value};
use p2p_estimation::{Heuristic, ProtocolSpec, SpecError};
use p2p_sim::{HopLatency, NetworkModel};
use p2p_workload::{WorkloadSource, WorkloadSpec};
use std::fmt;

/// Which execution backend runs an experiment: the discrete-event
/// simulator (bit-deterministic per seed, the golden-trace oracle) or the
/// `p2p-node` loopback cluster (real sockets on the wall clock,
/// envelope-checked against a matched DES run). The experiments engine
/// executes `des` itself; `cluster` specs are interpreted by the `node`
/// binary, which uses the engine only for the matched oracle run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The discrete-event simulator.
    #[default]
    Des,
    /// The `p2p-node` loopback cluster over real UDP sockets.
    Cluster,
}

impl Backend {
    /// Parses `des` | `cluster`.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s.trim() {
            "des" => Ok(Backend::Des),
            "cluster" => Ok(Backend::Cluster),
            other => Err(SpecError(format!(
                "unknown backend `{other}` (des | cluster)"
            ))),
        }
    }

    /// The spec-grammar name (`des` | `cluster`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Des => "des",
            Backend::Cluster => "cluster",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which execution form of a protocol an experiment drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Round-driven [`EstimationProtocol`](p2p_estimation::EstimationProtocol)
    /// through the synchronous adapter — the paper's instantaneous
    /// simulator; the scenario's network model cannot touch it.
    #[default]
    Sync,
    /// Event-driven [`NodeProtocol`](p2p_estimation::NodeProtocol), message
    /// by message under the scenario's network model.
    Async,
}

/// One protocol entry of an experiment.
#[derive(Clone, Debug)]
pub struct ProtocolRun {
    /// What to run.
    pub protocol: ProtocolSpec,
    /// How to execute it.
    pub mode: ExecMode,
    /// Reporting heuristic applied to its raw estimates.
    pub heuristic: Heuristic,
    /// Seed-derivation stream for this entry. `None` → the experiment
    /// seed; `Some(s)` → `derive_seed(base, s)` where `base` is the master
    /// seed for whole-experiment entries and the sweep-point seed inside a
    /// sweep (the historic figures' conventions, pinned by the golden
    /// tests).
    pub seed_stream: Option<u64>,
    /// Replaces the experiment scenario for this entry (the network
    /// figures drive the epidemic class on a longer timeline than the
    /// polling classes).
    pub scenario_override: Option<Scenario>,
    /// Series label override; `None` → the protocol's figure label.
    pub label: Option<String>,
}

impl ProtocolRun {
    /// A sync-mode entry with one-shot reporting and default seeding.
    pub fn sync(protocol: ProtocolSpec) -> Self {
        ProtocolRun {
            protocol,
            mode: ExecMode::Sync,
            heuristic: Heuristic::OneShot,
            seed_stream: None,
            scenario_override: None,
            label: None,
        }
    }

    /// An async-mode entry with one-shot reporting and default seeding.
    pub fn async_(protocol: ProtocolSpec) -> Self {
        ProtocolRun {
            mode: ExecMode::Async,
            ..Self::sync(protocol)
        }
    }

    /// Same entry with a reporting heuristic.
    pub fn heuristic(mut self, heuristic: Heuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Same entry deriving its seed from stream `s`.
    pub fn stream(mut self, s: u64) -> Self {
        self.seed_stream = Some(s);
        self
    }

    /// Same entry over its own scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario_override = Some(scenario);
        self
    }

    /// Same entry under a custom series label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The series label this entry plots under.
    pub fn series_label(&self) -> &str {
        self.label
            .as_deref()
            .unwrap_or_else(|| self.protocol.label())
    }
}

/// What a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SweepAxis {
    /// Message drop probability; the series' x value is the percentage
    /// (`100 × drop`), as in Fig 20.
    Drop,
    /// Half-spread (ms) of a uniform one-hop delay around `mean_ms`, with
    /// the step cadence stretched to `step_ticks`, as in Fig 19.
    DelaySpread {
        /// Mean one-hop latency (ms).
        mean_ms: f64,
        /// Step cadence under latency (ticks).
        step_ticks: u64,
    },
}

impl SweepAxis {
    /// Applies one sweep value to the scenario's base network model.
    pub fn apply(&self, base: NetworkModel, v: f64) -> NetworkModel {
        match *self {
            SweepAxis::Drop => base.with_drop_rate(v),
            SweepAxis::DelaySpread {
                mean_ms,
                step_ticks,
            } => {
                let latency = if v == 0.0 {
                    HopLatency::Constant(mean_ms)
                } else {
                    HopLatency::Uniform {
                        lo: mean_ms - v,
                        hi: mean_ms + v,
                    }
                };
                base.with_latency(latency).with_step_ticks(step_ticks)
            }
        }
    }

    /// The x coordinate a sweep value plots at.
    pub fn x(&self, v: f64) -> f64 {
        match self {
            SweepAxis::Drop => 100.0 * v,
            SweepAxis::DelaySpread { .. } => v,
        }
    }

    /// `key=value` label for derived scenario names and progress lines.
    pub fn label(&self, v: f64) -> String {
        match self {
            SweepAxis::Drop => format!("drop={v}"),
            SweepAxis::DelaySpread { .. } => format!("spread={v}"),
        }
    }
}

/// A parameter sweep: the experiment repeats per value, one series point
/// per protocol per value.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// The varied knob.
    pub axis: SweepAxis,
    /// The values, in plotting order.
    pub values: Vec<f64>,
    /// Seed stream base: sweep point `i` derives its seed from
    /// `derive_seed(master, seed_base + i)` (Fig 19 uses base 0, Fig 20
    /// base 100 — kept apart so the two figures' streams never collide).
    pub seed_base: u64,
}

/// The metric a sweep summarizes each protocol's traces into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMetric {
    /// Mean `|estimate − truth| / truth` over every completed reporting
    /// period, in percent (Fig 19's y axis).
    MeanAbsErrPct,
    /// Completed reporting periods as a percentage of those scheduled
    /// (Fig 20's y axis).
    CompletedPct,
}

/// How an experiment's runs become curves.
#[derive(Clone, Debug)]
pub enum Presentation {
    /// One sync trace on the quality-% axis: optionally a last-`k`
    /// smoothed curve first, then the raw curve labelled `raw_label`
    /// (Figs 1–4 and 18).
    StaticQuality {
        /// Smoothing window (`Some(10)` = the paper's last10runs curve).
        smooth: Option<usize>,
        /// Label of the raw curve.
        raw_label: String,
    },
    /// A "Real network size" truth curve followed by one estimate curve
    /// per replication, on the raw-size axis (Figs 9–17).
    Tracking,
    /// Round-by-round convergence quality of independent aggregation runs
    /// (Figs 5/6).
    Convergence,
    /// The degree histogram of the scenario overlay; runs no protocol
    /// (Fig 7). `{max}`/`{mean}` in the title are filled from the built
    /// overlay's degree stats.
    DegreeHistogram,
    /// Every protocol entry estimates repeatedly on one shared overlay
    /// snapshot, on the quality-% axis (Fig 8).
    SharedOverlay {
        /// Estimations per protocol.
        estimations: u64,
    },
    /// One series per protocol, one [`SweepMetric`] point per sweep value
    /// (Figs 19/20 and free-form CLI sweeps).
    SweepSummary {
        /// The summarized metric.
        metric: SweepMetric,
    },
}

/// A complete, executable experiment description. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment id (`"fig09"`, `"custom"`, …) — the CSV file stem.
    pub id: String,
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The timeline (initial size, steps, churn schedule, topology, base
    /// network).
    pub scenario: Scenario,
    /// The protocols to run over it.
    pub protocols: Vec<ProtocolRun>,
    /// Independent replications per protocol (presentations impose their
    /// historic floors: [`Presentation::Tracking`] runs at least 1,
    /// [`Presentation::Convergence`] at least 3).
    pub replications: usize,
    /// Experiment seed stream: `None` → the master seed itself, `Some(s)`
    /// → `derive_seed(master, s)` (the figures use their figure number).
    pub seed_stream: Option<u64>,
    /// Optional parameter sweep.
    pub sweep: Option<Sweep>,
    /// How results become curves.
    pub presentation: Presentation,
    /// Which execution backend the spec targets. The engine runs
    /// [`Backend::Des`] directly; [`Backend::Cluster`] specs are executed
    /// by the `node` binary's loopback harness.
    pub backend: Backend,
}

impl ExperimentSpec {
    /// A one-line summary of the spec's cross-product cell, for
    /// `repro list` and the DESIGN.md table.
    pub fn summary(&self) -> String {
        let protocols: Vec<String> = self
            .protocols
            .iter()
            .map(|p| {
                let mode = match p.mode {
                    ExecMode::Sync => "",
                    ExecMode::Async => " (async)",
                };
                format!("{}{}", p.protocol, mode)
            })
            .collect();
        let protocols = if protocols.is_empty() {
            "-".to_string()
        } else {
            protocols.join(" + ")
        };
        let sweep = match &self.sweep {
            Some(s) => {
                let axis = match s.axis {
                    SweepAxis::Drop => "drop",
                    SweepAxis::DelaySpread { .. } => "spread",
                };
                format!(
                    ", sweep {axis}={}",
                    s.values
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("/")
                )
            }
            None => String::new(),
        };
        let backend = match self.backend {
            Backend::Des => String::new(),
            Backend::Cluster => format!(" backend={}", self.backend),
        };
        format!(
            "{} · {} n={} steps={}{}{}",
            protocols,
            self.scenario.name,
            self.scenario.initial_size,
            self.scenario.steps,
            sweep,
            backend
        )
    }
}

/// A parseable scenario description: `kind[:key=value,...]` with keys
/// `frac` (growth/shrink fraction), `topology`
/// (`heterogeneous` | `scale-free`) and `churn` (a
/// [`WorkloadSpec`] layered on top of the kind's schedule — the workload
/// grammar owns `,`/`:`/`+`, so `churn` must be the **last** key and
/// consumes the rest of the string). Resolved against a size and step
/// count with [`ScenarioSpec::resolve`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The churn timeline family.
    pub kind: ScenarioKind,
    /// Growth/shrink fraction (ignored by the other kinds).
    pub fraction: f64,
    /// The overlay family.
    pub topology: Topology,
    /// Streamed churn layered on top of the kind's schedule
    /// (`static:churn=pareto:alpha=1.5,mean=50` is the common pairing).
    pub churn: Option<WorkloadSpec>,
    /// Execution backend (`backend=des|cluster`); flows into
    /// [`ExperimentSpec::backend`] when the CLI assembles a spec.
    pub backend: Backend,
}

/// The churn timeline families a [`ScenarioSpec`] can name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// No churn.
    Static,
    /// Evenly spread joins (+`frac`, paper: +50%).
    Growing,
    /// Evenly spread departures (−`frac`).
    Shrinking,
    /// Two −25% catastrophes plus a +25% arrival.
    Catastrophic,
    /// Fig 15's exact schedule, scaled to the timeline.
    CatastrophicFig15,
}

impl ScenarioSpec {
    /// Parses `kind[:key=value,...]` (`churn=...` last, greedy).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let (name, params, churn) = match s.split_once(':') {
            Some((n, tail)) => {
                // `churn=` swallows the rest of the string: the workload
                // grammar uses `,` and `:` itself.
                let (head, churn) = match tail.find("churn=") {
                    Some(i) if i == 0 || tail.as_bytes()[i - 1] == b',' => {
                        let spec = WorkloadSpec::parse(&tail[i + "churn=".len()..])?;
                        (tail[..i].trim_end_matches(','), Some(spec))
                    }
                    _ => (tail, None),
                };
                (n.trim(), parse_params(head)?, churn)
            }
            None => (s.trim(), Vec::new(), None),
        };
        let kind = match name {
            "static" => ScenarioKind::Static,
            "growing" => ScenarioKind::Growing,
            "shrinking" => ScenarioKind::Shrinking,
            "catastrophic" => ScenarioKind::Catastrophic,
            "catastrophic-fig15" | "fig15" => ScenarioKind::CatastrophicFig15,
            other => {
                return Err(SpecError(format!(
                    "unknown scenario `{other}` (static | growing | shrinking | catastrophic | \
                     catastrophic-fig15)"
                )))
            }
        };
        let mut spec = ScenarioSpec {
            kind,
            fraction: 0.5,
            topology: Topology::Heterogeneous,
            churn,
            backend: Backend::Des,
        };
        for (k, v) in params {
            match k {
                "frac" => spec.fraction = parse_value(k, v)?,
                "topology" => {
                    spec.topology = match v {
                        "heterogeneous" | "het" => Topology::Heterogeneous,
                        "scale-free" | "ba" => Topology::ScaleFree,
                        other => {
                            return Err(SpecError(format!(
                                "unknown topology `{other}` (heterogeneous | scale-free)"
                            )))
                        }
                    }
                }
                "backend" => spec.backend = Backend::parse(v)?,
                other => {
                    return Err(SpecError(format!(
                        "unknown scenario key `{other}` (frac | topology | backend)"
                    )))
                }
            }
        }
        Ok(spec)
    }

    /// Materializes the scenario at a concrete size and step count.
    pub fn resolve(&self, initial_size: usize, steps: u64) -> Scenario {
        let s = match self.kind {
            ScenarioKind::Static => Scenario::static_network(initial_size, steps),
            ScenarioKind::Growing => Scenario::growing(initial_size, steps, self.fraction),
            ScenarioKind::Shrinking => Scenario::shrinking(initial_size, steps, self.fraction),
            ScenarioKind::Catastrophic => Scenario::catastrophic(initial_size, steps),
            ScenarioKind::CatastrophicFig15 => Scenario::catastrophic_fig15(initial_size, steps),
        };
        let s = s.with_topology(self.topology);
        match &self.churn {
            Some(spec) => s.with_workload(WorkloadSource::Model(spec.clone())),
            None => s,
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.kind {
            ScenarioKind::Static => "static",
            ScenarioKind::Growing => "growing",
            ScenarioKind::Shrinking => "shrinking",
            ScenarioKind::Catastrophic => "catastrophic",
            ScenarioKind::CatastrophicFig15 => "catastrophic-fig15",
        };
        f.write_str(name)?;
        let mut sep = ':';
        let scaled = matches!(self.kind, ScenarioKind::Growing | ScenarioKind::Shrinking);
        if scaled && self.fraction != 0.5 {
            write!(f, "{sep}frac={}", self.fraction)?;
            sep = ',';
        }
        if self.topology != Topology::Heterogeneous {
            write!(f, "{sep}topology={}", self.topology.key())?;
            sep = ',';
        }
        if self.backend != Backend::Des {
            write!(f, "{sep}backend={}", self.backend)?;
            sep = ',';
        }
        // Last, always: the workload grammar consumes the rest of the
        // string on re-parse.
        if let Some(churn) = &self.churn {
            write!(f, "{sep}churn={churn}")?;
        }
        Ok(())
    }
}

/// A parseable network model: `ideal`, `wan`, or `key=value,...` with keys
/// `drop`, `latency` (mean ms), `jitter` (uniform half-spread ms),
/// `link-spread` and `ticks` (step cadence).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkSpec(pub NetworkModel);

impl NetworkSpec {
    /// Parses the grammar above.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        match s {
            "ideal" | "" => return Ok(NetworkSpec(NetworkModel::ideal())),
            "wan" => return Ok(NetworkSpec(NetworkModel::wan())),
            _ => {}
        }
        let mut model = NetworkModel::ideal();
        let mut mean = 0.0f64;
        let mut jitter = 0.0f64;
        for (k, v) in parse_params(s)? {
            match k {
                "drop" => {
                    let rate: f64 = parse_value(k, v)?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(SpecError(format!("drop rate {rate} outside [0,1]")));
                    }
                    model = model.with_drop_rate(rate);
                }
                "latency" => mean = parse_value(k, v)?,
                "jitter" => jitter = parse_value(k, v)?,
                "link-spread" => {
                    let spread: f64 = parse_value(k, v)?;
                    if !(0.0..=1.0).contains(&spread) {
                        return Err(SpecError(format!("link spread {spread} outside [0,1]")));
                    }
                    model = model.with_link_spread(spread);
                }
                "ticks" => {
                    let ticks: u64 = parse_value(k, v)?;
                    if ticks == 0 {
                        return Err(SpecError("ticks must be ≥ 1".to_string()));
                    }
                    model = model.with_step_ticks(ticks);
                }
                other => {
                    return Err(SpecError(format!(
                        "unknown network key `{other}` (drop | latency | jitter | link-spread | \
                         ticks)"
                    )))
                }
            }
        }
        if jitter > 0.0 && jitter >= mean {
            return Err(SpecError(format!(
                "jitter {jitter} must stay below the latency mean {mean}"
            )));
        }
        if mean > 0.0 {
            let latency = if jitter == 0.0 {
                HopLatency::Constant(mean)
            } else {
                HopLatency::Uniform {
                    lo: mean - jitter,
                    hi: mean + jitter,
                }
            };
            model = model.with_latency(latency);
        }
        Ok(NetworkSpec(model))
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        if m == NetworkModel::ideal() {
            return f.write_str("ideal");
        }
        let mut parts: Vec<String> = Vec::new();
        if m.drop_rate != 0.0 {
            parts.push(format!("drop={}", m.drop_rate));
        }
        match m.latency {
            HopLatency::Constant(ms) if ms != 0.0 => parts.push(format!("latency={ms}")),
            HopLatency::Uniform { lo, hi } => {
                parts.push(format!("latency={}", 0.5 * (lo + hi)));
                parts.push(format!("jitter={}", 0.5 * (hi - lo)));
            }
            _ => {}
        }
        if m.link_spread != 0.0 {
            parts.push(format!("link-spread={}", m.link_spread));
        }
        if m.step_ticks != 1 {
            parts.push(format!("ticks={}", m.step_ticks));
        }
        f.write_str(&parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_spec_parses_and_resolves() {
        let s = ScenarioSpec::parse("growing:frac=0.25").unwrap();
        assert_eq!(s.kind, ScenarioKind::Growing);
        let scenario = s.resolve(1_000, 50);
        assert_eq!(scenario.name, "growing");
        assert_eq!(scenario.nominal_final_size(), 1_250.0);

        let s = ScenarioSpec::parse("catastrophic:topology=scale-free").unwrap();
        let scenario = s.resolve(1_000, 100);
        assert_eq!(scenario.topology, Topology::ScaleFree);
        assert_eq!(scenario.schedule.len(), 3);
    }

    #[test]
    fn scenario_spec_round_trips() {
        for text in [
            "static",
            "growing",
            "growing:frac=0.25",
            "shrinking:frac=0.75,topology=scale-free",
            "catastrophic",
            "catastrophic-fig15",
            "static:topology=scale-free",
            "static:churn=pareto:alpha=1.5,mean=50",
            "growing:frac=0.25,churn=steady:join=2,leave=2",
            "static:topology=scale-free,churn=flash:at=25,frac=0.5,hold=30+regional:at=75,regions=8,frac=1",
        ] {
            let spec = ScenarioSpec::parse(text).unwrap();
            assert_eq!(
                ScenarioSpec::parse(&spec.to_string()).unwrap(),
                spec,
                "{text}"
            );
        }
        assert_eq!(
            ScenarioSpec::parse("growing").unwrap().to_string(),
            "growing"
        );
    }

    #[test]
    fn scenario_spec_churn_is_greedy_and_resolves_to_a_workload() {
        // Everything after `churn=` belongs to the workload grammar, commas
        // and composition included.
        let s =
            ScenarioSpec::parse("growing:frac=0.25,churn=pareto:alpha=2,mean=40,rate=3").unwrap();
        assert_eq!(s.fraction, 0.25);
        let churn = s.churn.as_ref().unwrap();
        assert_eq!(churn.to_string(), "pareto:alpha=2,mean=40,rate=3");
        let scenario = s.resolve(1_000, 50);
        assert!(!scenario.schedule.is_empty(), "kind schedule kept");
        assert_eq!(scenario.workload.unwrap().spec(), Some(churn));
        // A bad workload tail is the workload grammar's error, not an
        // "unknown scenario key".
        let err = ScenarioSpec::parse("static:churn=melting").unwrap_err();
        assert!(err.0.contains("churn model"), "{err}");
    }

    #[test]
    fn network_spec_parses_and_round_trips() {
        assert_eq!(
            NetworkSpec::parse("ideal").unwrap().0,
            NetworkModel::ideal()
        );
        assert_eq!(NetworkSpec::parse("wan").unwrap().0, NetworkModel::wan());
        let n = NetworkSpec::parse("drop=0.01,latency=100,jitter=40,ticks=2000")
            .unwrap()
            .0;
        assert_eq!(n.drop_rate, 0.01);
        assert_eq!(
            n.latency,
            HopLatency::Uniform {
                lo: 60.0,
                hi: 140.0
            }
        );
        assert_eq!(n.step_ticks, 2_000);
        for text in [
            "ideal",
            "drop=0.5",
            "latency=10,ticks=400",
            "drop=0.01,latency=100,jitter=40,link-spread=0.25,ticks=2000",
        ] {
            let spec = NetworkSpec::parse(text).unwrap();
            assert_eq!(
                NetworkSpec::parse(&spec.to_string()).unwrap(),
                spec,
                "{text}"
            );
        }
    }

    #[test]
    fn bad_specs_report_errors() {
        assert!(ScenarioSpec::parse("melting").is_err());
        assert!(ScenarioSpec::parse("growing:frac=x").is_err());
        assert!(ScenarioSpec::parse("static:topology=torus").is_err());
        assert!(NetworkSpec::parse("drop=2").is_err());
        assert!(NetworkSpec::parse("warp=9").is_err());
        assert!(NetworkSpec::parse("latency=10,jitter=20").is_err());
    }

    #[test]
    fn sweep_axis_applies_and_labels() {
        let drop = SweepAxis::Drop;
        assert_eq!(drop.apply(NetworkModel::ideal(), 0.01).drop_rate, 0.01);
        assert_eq!(drop.x(0.01), 1.0);
        assert_eq!(drop.label(0.01), "drop=0.01");

        let spread = SweepAxis::DelaySpread {
            mean_ms: 100.0,
            step_ticks: 2_000,
        };
        let m = spread.apply(NetworkModel::ideal(), 40.0);
        assert_eq!(
            m.latency,
            HopLatency::Uniform {
                lo: 60.0,
                hi: 140.0
            }
        );
        assert_eq!(m.step_ticks, 2_000);
        let m0 = spread.apply(NetworkModel::ideal(), 0.0);
        assert_eq!(m0.latency, HopLatency::Constant(100.0));
        assert_eq!(spread.x(40.0), 40.0);
    }

    #[test]
    fn summary_mentions_the_cell() {
        let spec = ExperimentSpec {
            backend: Backend::Des,
            id: "x".to_string(),
            title: "t".to_string(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            scenario: Scenario::growing(1_000, 24, 0.5),
            protocols: vec![
                ProtocolRun::async_(ProtocolSpec::sample_collide_cheap()),
                ProtocolRun::sync(ProtocolSpec::aggregation_paper()),
            ],
            replications: 2,
            seed_stream: None,
            sweep: Some(Sweep {
                axis: SweepAxis::Drop,
                values: vec![0.0, 0.01],
                seed_base: 100,
            }),
            presentation: Presentation::SweepSummary {
                metric: SweepMetric::CompletedPct,
            },
        };
        let s = spec.summary();
        assert!(s.contains("sample-collide:l=10 (async)"), "{s}");
        assert!(s.contains("aggregation"), "{s}");
        assert!(s.contains("growing"), "{s}");
        assert!(s.contains("sweep drop=0/0.01"), "{s}");
    }
}
