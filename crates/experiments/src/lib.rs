//! # p2p-experiments
//!
//! Reproduction drivers for every experiment in the HPDC 2006 comparative
//! study: one function per figure/table, each returning plot-ready data
//! ([`p2p_stats::series::Figure`] or [`table::Table1`]).
//!
//! The mapping figure → function → bench target lives in `DESIGN.md`; the
//! measured-vs-paper record lives in `EXPERIMENTS.md`. Everything is driven
//! by the `repro` binary:
//!
//! ```text
//! repro --all --scale small --out target/figures
//! repro --fig 5 --scale paper
//! repro --table 1
//! ```
//!
//! ## Scales
//!
//! The paper simulates 100,000- and 1,000,000-node overlays. All runners are
//! parameterized by [`scale::ExperimentScale`] so the same code produces
//! quick CI-sized runs (`small`/`tiny`) and full paper-sized runs (`paper`).
//! Estimation quality and cost *shapes* are scale-free (that is the point of
//! the algorithms); absolute message counts grow with N as derived in §IV-E.

pub mod delay;
pub mod figures;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod table;

pub use runner::{run_replications, run_scenario, Trace};
pub use scale::ExperimentScale;
pub use scenario::Scenario;
