//! # p2p-experiments
//!
//! Declarative reproduction of every experiment in the HPDC 2006
//! comparative study. Experiments are *data*: an [`ExperimentSpec`]
//! (protocols × [`Scenario`] × network × replications × sweep ×
//! presentation) executed by one generic [`engine`], streaming rows
//! through a [`ResultSink`]. The paper's 20 figures are registered specs
//! ([`figures::spec_for`]); free-form specs cover experiments the paper
//! never drew. The spec → figure → bench mapping lives in `DESIGN.md`.
//! Everything is driven by the `repro` binary:
//!
//! ```text
//! repro list
//! repro run --all --scale small --out target/figures
//! repro run --fig 5 --scale paper
//! repro run --protocol sample-collide:l=10 --scenario catastrophic \
//!           --sweep drop=0,0.001,0.01 --jobs 2
//! repro table
//! ```
//!
//! ## Scales
//!
//! The paper simulates 100,000- and 1,000,000-node overlays. All runners are
//! parameterized by [`scale::ExperimentScale`] so the same code produces
//! quick CI-sized runs (`small`/`tiny`) and full paper-sized runs (`paper`).
//! Estimation quality and cost *shapes* are scale-free (that is the point of
//! the algorithms); absolute message counts grow with N as derived in §IV-E.

pub mod delay;
pub mod engine;
pub mod figures;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod sharded;
pub mod sink;
pub mod spec;
pub mod table;

pub use engine::{run_experiment, run_figure_spec, EngineOptions};
pub use runner::{run_replications, run_scenario, Trace};
pub use scale::ExperimentScale;
pub use scenario::{Scenario, Topology};
pub use sharded::{run_scenario_des_sharded, ShardOpts};
pub use sink::{CsvSink, FigureSink, JsonLinesSink, ResultSink};
pub use spec::{ExperimentSpec, NetworkSpec, Presentation, ProtocolRun, ScenarioSpec};
