//! The parseable workload grammar — churn models as short strings.
//!
//! One model is `kind[:key=value,...]` (the workspace's shared `key=value`
//! grammar); several models compose on one timeline with `+`:
//!
//! ```text
//! steady:join=2,leave=2
//! pareto:alpha=1.5,mean=50           # heavy-tailed sessions, IPFS-like
//! weibull:shape=0.5,mean=50,rate=12  # explicit arrival rate
//! diurnal:join=5,leave=5,period=24,amp=0.8
//! flash:at=25,frac=0.5,hold=30
//! regional:at=75,regions=8,frac=1
//! flash:at=25,frac=0.5,hold=30+regional:at=75   # composed
//! ```
//!
//! `parse ∘ Display == id` on values (property-tested); omitted keys take
//! the defaults listed on [`WorkloadSpec::parse`].

use crate::dist::LifetimeDist;
use crate::model::CompositeModel;
use crate::models::{DiurnalModel, FlashCrowd, RegionalFailure, SessionModel, SteadyModel};
use crate::ChurnModel;
use p2p_estimation::spec::{parse_params, parse_value};
use p2p_estimation::SpecError;
use std::fmt;

/// One parseable model description. See the [module docs](self) for the
/// grammar; [`WorkloadSpec`] composes several on one timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelSpec {
    /// `steady:join=J,leave=L` — Poisson churn at constant rates.
    Steady {
        /// Expected joins per step.
        join: f64,
        /// Expected departures per step.
        leave: f64,
    },
    /// `pareto:alpha=A,mean=M[,rate=R]` — Pareto session lengths.
    Pareto {
        /// Tail index (> 1).
        alpha: f64,
        /// Mean session length in steps.
        mean: f64,
        /// Arrival rate; `None` balances the initial population.
        rate: Option<f64>,
    },
    /// `weibull:shape=K,mean=M[,rate=R]` — Weibull session lengths.
    Weibull {
        /// Shape parameter (> 0; < 1 is heavy-tailed).
        shape: f64,
        /// Mean session length in steps.
        mean: f64,
        /// Arrival rate; `None` balances the initial population.
        rate: Option<f64>,
    },
    /// `diurnal:join=J,leave=L,period=P,amp=A[,phase=PH]` — sine-modulated
    /// Poisson rates.
    Diurnal {
        /// Base expected joins per step.
        join: f64,
        /// Base expected departures per step.
        leave: f64,
        /// Steps per cycle.
        period: u64,
        /// Swing fraction in `[0, 1]`.
        amp: f64,
        /// Phase offset in radians.
        phase: f64,
    },
    /// `flash:at=S,frac=F[,hold=H]` — a flash crowd.
    Flash {
        /// Arrival step.
        at: u64,
        /// Crowd size as a fraction of the population at `at`.
        frac: f64,
        /// Steps until the cohort departs.
        hold: Option<u64>,
    },
    /// `regional:at=S,regions=R,frac=F` — a correlated regional failure.
    Regional {
        /// Failure step.
        at: u64,
        /// Number of id-striped regions.
        regions: u32,
        /// Fraction of the failing region that dies.
        frac: f64,
    },
}

impl ModelSpec {
    fn parse(s: &str) -> Result<Self, SpecError> {
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n.trim(), parse_params(p)?),
            None => (s.trim(), Vec::new()),
        };
        let unknown = |key: &str, keys: &str| -> SpecError {
            SpecError(format!("unknown {name} key `{key}` ({keys})"))
        };
        let spec = match name {
            "steady" => {
                let (mut join, mut leave) = (0.0, 0.0);
                for (k, v) in params {
                    match k {
                        "join" => join = parse_value(k, v)?,
                        "leave" => leave = parse_value(k, v)?,
                        other => return Err(unknown(other, "join | leave")),
                    }
                }
                ModelSpec::Steady { join, leave }
            }
            "pareto" | "weibull" => {
                let shape_key = if name == "pareto" { "alpha" } else { "shape" };
                let mut shape = if name == "pareto" { 1.5 } else { 0.5 };
                let mut mean = None;
                let mut rate = None;
                for (k, v) in params {
                    match k {
                        k if k == shape_key => shape = parse_value(k, v)?,
                        "mean" => mean = Some(parse_value(k, v)?),
                        "rate" => rate = Some(parse_value(k, v)?),
                        other => {
                            return Err(SpecError(format!(
                                "unknown {name} key `{other}` ({shape_key} | mean | rate)"
                            )))
                        }
                    }
                }
                let mean: f64 =
                    mean.ok_or_else(|| SpecError(format!("{name} needs mean=<steps>")))?;
                if mean <= 0.0 {
                    return Err(SpecError(format!("{name} mean {mean} must be positive")));
                }
                if name == "pareto" {
                    if shape <= 1.0 {
                        return Err(SpecError(format!(
                            "pareto alpha {shape} needs alpha > 1 for a finite mean"
                        )));
                    }
                    ModelSpec::Pareto {
                        alpha: shape,
                        mean,
                        rate,
                    }
                } else {
                    if shape <= 0.0 {
                        return Err(SpecError(format!("weibull shape {shape} must be positive")));
                    }
                    ModelSpec::Weibull { shape, mean, rate }
                }
            }
            "diurnal" => {
                let (mut join, mut leave) = (0.0, 0.0);
                let mut period = 24u64;
                let mut amp = 0.5;
                let mut phase = 0.0;
                for (k, v) in params {
                    match k {
                        "join" => join = parse_value(k, v)?,
                        "leave" => leave = parse_value(k, v)?,
                        "period" => period = parse_value(k, v)?,
                        "amp" => amp = parse_value(k, v)?,
                        "phase" => phase = parse_value(k, v)?,
                        other => return Err(unknown(other, "join | leave | period | amp | phase")),
                    }
                }
                if period == 0 {
                    return Err(SpecError("diurnal period must be ≥ 1".to_string()));
                }
                if !(0.0..=1.0).contains(&amp) {
                    return Err(SpecError(format!(
                        "diurnal amp {amp} outside [0,1] (rates would go negative)"
                    )));
                }
                ModelSpec::Diurnal {
                    join,
                    leave,
                    period,
                    amp,
                    phase,
                }
            }
            "flash" => {
                let mut at = None;
                let mut frac = 0.5;
                let mut hold = None;
                for (k, v) in params {
                    match k {
                        "at" => at = Some(parse_value(k, v)?),
                        "frac" => frac = parse_value(k, v)?,
                        "hold" => hold = Some(parse_value(k, v)?),
                        other => return Err(unknown(other, "at | frac | hold")),
                    }
                }
                let at = at.ok_or_else(|| SpecError("flash needs at=<step>".to_string()))?;
                if frac <= 0.0 {
                    return Err(SpecError(format!("flash frac {frac} must be positive")));
                }
                if hold == Some(0) {
                    return Err(SpecError(
                        "flash hold=0 would evict the crowd in the step it joins; use \
                         hold ≥ 1 (or drop hold to keep the crowd)"
                            .to_string(),
                    ));
                }
                ModelSpec::Flash { at, frac, hold }
            }
            "regional" => {
                let mut at = None;
                let mut regions = 8u32;
                let mut frac = 1.0;
                for (k, v) in params {
                    match k {
                        "at" => at = Some(parse_value(k, v)?),
                        "regions" => regions = parse_value(k, v)?,
                        "frac" => frac = parse_value(k, v)?,
                        other => return Err(unknown(other, "at | regions | frac")),
                    }
                }
                let at = at.ok_or_else(|| SpecError("regional needs at=<step>".to_string()))?;
                if regions == 0 {
                    return Err(SpecError("regional regions must be ≥ 1".to_string()));
                }
                if !(0.0..=1.0).contains(&frac) {
                    return Err(SpecError(format!("regional frac {frac} outside [0,1]")));
                }
                ModelSpec::Regional { at, regions, frac }
            }
            other => {
                return Err(SpecError(format!(
                    "unknown churn model `{other}` (steady | pareto | weibull | diurnal | flash \
                     | regional)"
                )))
            }
        };
        Ok(spec)
    }

    /// Builds the model; `max_degree` caps the wiring of joining nodes.
    pub fn build(&self, max_degree: usize) -> Box<dyn ChurnModel> {
        match *self {
            ModelSpec::Steady { join, leave } => Box::new(SteadyModel {
                arrival_rate: join,
                departure_rate: leave,
                max_degree,
            }),
            ModelSpec::Pareto { alpha, mean, rate } => Box::new(SessionModel::new(
                LifetimeDist::Pareto { alpha, mean },
                rate,
                max_degree,
            )),
            ModelSpec::Weibull { shape, mean, rate } => Box::new(SessionModel::new(
                LifetimeDist::Weibull { shape, mean },
                rate,
                max_degree,
            )),
            ModelSpec::Diurnal {
                join,
                leave,
                period,
                amp,
                phase,
            } => Box::new(DiurnalModel {
                arrival_rate: join,
                departure_rate: leave,
                period,
                amplitude: amp,
                phase,
                max_degree,
            }),
            ModelSpec::Flash { at, frac, hold } => {
                Box::new(FlashCrowd::new(at, frac, hold, max_degree))
            }
            ModelSpec::Regional { at, regions, frac } => Box::new(RegionalFailure {
                at,
                regions,
                fraction: frac,
            }),
        }
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSpec::Steady { join, leave } => write!(f, "steady:join={join},leave={leave}"),
            ModelSpec::Pareto { alpha, mean, rate } => {
                write!(f, "pareto:alpha={alpha},mean={mean}")?;
                if let Some(r) = rate {
                    write!(f, ",rate={r}")?;
                }
                Ok(())
            }
            ModelSpec::Weibull { shape, mean, rate } => {
                write!(f, "weibull:shape={shape},mean={mean}")?;
                if let Some(r) = rate {
                    write!(f, ",rate={r}")?;
                }
                Ok(())
            }
            ModelSpec::Diurnal {
                join,
                leave,
                period,
                amp,
                phase,
            } => {
                write!(
                    f,
                    "diurnal:join={join},leave={leave},period={period},amp={amp}"
                )?;
                if *phase != 0.0 {
                    write!(f, ",phase={phase}")?;
                }
                Ok(())
            }
            ModelSpec::Flash { at, frac, hold } => {
                write!(f, "flash:at={at},frac={frac}")?;
                if let Some(h) = hold {
                    write!(f, ",hold={h}")?;
                }
                Ok(())
            }
            ModelSpec::Regional { at, regions, frac } => {
                write!(f, "regional:at={at},regions={regions},frac={frac}")
            }
        }
    }
}

/// A complete workload: one or more [`ModelSpec`]s composed on one
/// timeline (`+`-joined in the string form).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec(pub Vec<ModelSpec>);

impl WorkloadSpec {
    /// Parses `model[+model...]`. Per-model defaults: `steady` rates 0;
    /// `pareto` alpha 1.5; `weibull` shape 0.5 (both require `mean`, and
    /// balance arrivals unless `rate` is given); `diurnal` period 24,
    /// amp 0.5, phase 0; `flash` frac 0.5, no hold; `regional` regions 8,
    /// frac 1.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let models: Result<Vec<ModelSpec>, SpecError> =
            s.split('+').map(ModelSpec::parse).collect();
        let models = models?;
        debug_assert!(!models.is_empty(), "split always yields one part");
        Ok(WorkloadSpec(models))
    }

    /// Whether any composed model emits *uniform-victim* departures
    /// (`Leave { count }` ops, whose victims are drawn from the run's main
    /// stream at application time). Traces of such workloads replay the
    /// exact populations only under the recording's protocol and seed;
    /// purely identity-targeted workloads (sessions, flash, regional)
    /// replay exactly under any protocol.
    pub fn has_uniform_departures(&self) -> bool {
        self.0.iter().any(|m| match m {
            ModelSpec::Steady { leave, .. } | ModelSpec::Diurnal { leave, .. } => *leave > 0.0,
            ModelSpec::Pareto { .. }
            | ModelSpec::Weibull { .. }
            | ModelSpec::Flash { .. }
            | ModelSpec::Regional { .. } => false,
        })
    }

    /// Builds the runnable model (a [`CompositeModel`] when composed).
    pub fn build(&self, max_degree: usize) -> Box<dyn ChurnModel> {
        if self.0.len() == 1 {
            self.0[0].build(max_degree)
        } else {
            Box::new(CompositeModel::new(
                self.0.iter().map(|m| m.build(max_degree)).collect(),
            ))
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        for text in [
            "steady:join=2,leave=2",
            "steady:join=0.5,leave=3.25",
            "pareto:alpha=1.5,mean=50",
            "pareto:alpha=2.5,mean=120,rate=7.5",
            "weibull:shape=0.5,mean=50",
            "weibull:shape=1.25,mean=10,rate=100",
            "diurnal:join=5,leave=5,period=24,amp=0.8",
            "diurnal:join=1,leave=2,period=100,amp=1,phase=1.5",
            "flash:at=25,frac=0.5",
            "flash:at=25,frac=0.5,hold=30",
            "regional:at=75,regions=8,frac=1",
            "flash:at=25,frac=0.5,hold=30+regional:at=75,regions=4,frac=0.5",
            "steady:join=1,leave=1+flash:at=10,frac=2",
        ] {
            let spec = WorkloadSpec::parse(text).unwrap();
            let printed = spec.to_string();
            assert_eq!(WorkloadSpec::parse(&printed).unwrap(), spec, "{text}");
        }
    }

    #[test]
    fn defaults_fill_in() {
        assert_eq!(
            WorkloadSpec::parse("pareto:mean=40").unwrap().0[0],
            ModelSpec::Pareto {
                alpha: 1.5,
                mean: 40.0,
                rate: None
            }
        );
        assert_eq!(
            WorkloadSpec::parse("regional:at=5").unwrap().0[0],
            ModelSpec::Regional {
                at: 5,
                regions: 8,
                frac: 1.0
            }
        );
        assert_eq!(
            WorkloadSpec::parse("flash:at=5").unwrap().0[0],
            ModelSpec::Flash {
                at: 5,
                frac: 0.5,
                hold: None
            }
        );
    }

    #[test]
    fn bad_specs_report_errors() {
        for bad in [
            "melt:rate=1",
            "pareto",                   // mean required
            "pareto:alpha=0.9,mean=10", // infinite mean
            "pareto:mean=-4",           // negative mean
            "weibull:shape=0,mean=10",  // degenerate shape
            "weibull:mean=10,warp=9",   // unknown key
            "diurnal:amp=1.5",          // amp out of range
            "diurnal:period=0",         // degenerate period
            "flash:frac=0.5",           // at required
            "flash:at=5,frac=0",        // empty crowd
            "flash:at=5,hold=0",        // same-step eviction impossible
            "regional:at=5,regions=0",  // no regions
            "regional:at=5,frac=2",     // frac out of range
            "steady:join=x",            // unparseable number
            "steady:join=1+melt",       // bad composed tail
        ] {
            assert!(WorkloadSpec::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn uniform_departures_are_flagged() {
        for (text, uniform) in [
            ("steady:join=2,leave=2", true),
            ("steady:join=2,leave=0", false),
            ("diurnal:join=1,leave=1", true),
            ("pareto:mean=20", false),
            ("weibull:mean=20", false),
            ("flash:at=5,frac=0.5,hold=3", false),
            ("regional:at=5", false),
            ("pareto:mean=20+steady:join=0,leave=0.5", true),
            ("flash:at=5,frac=0.5+regional:at=9", false),
        ] {
            assert_eq!(
                WorkloadSpec::parse(text).unwrap().has_uniform_departures(),
                uniform,
                "{text}"
            );
        }
    }

    #[test]
    fn build_produces_runnable_models() {
        use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
        use p2p_sim::rng::small_rng;

        let mut rng = small_rng(31);
        let g = HeterogeneousRandom::paper(200).build(&mut rng);
        for text in [
            "steady:join=2,leave=2",
            "pareto:mean=20",
            "weibull:mean=20",
            "diurnal:join=2,leave=2",
            "flash:at=1,frac=0.5",
            "regional:at=1",
            "flash:at=1,frac=0.5+steady:join=1,leave=1",
        ] {
            let mut model = WorkloadSpec::parse(text).unwrap().build(10);
            model.on_init(&g, &mut rng);
            let mut out = Vec::new();
            model.ops_at(1, &g, &mut rng, &mut out);
            // No panics and plausible output is all we pin here; model
            // behavior is covered in `models::tests`.
        }
    }
}
