//! The streaming churn-model abstraction.
//!
//! A [`ChurnModel`] is a *lazy* churn source: the runner asks it for the
//! ops due at each step, applies them, and feeds the applied identities
//! back through [`observe`](ChurnModel::observe). Nothing is materialized
//! up front — a million-node, million-step workload costs O(alive nodes)
//! state (session heaps), never O(steps) schedule memory.
//!
//! Determinism contract (what makes traces recordable and replayable bit
//! for bit):
//!
//! * model draws (`ops_at`/`observe`/`on_init`) consume only the dedicated
//!   workload RNG stream the runner derives from the run seed;
//! * op *application* (victim sampling inside `Leave`/`Catastrophe`, join
//!   wiring) consumes the run's main stream — exactly like scheduled ops —
//!   so replaying a recorded op sequence reproduces the run without the
//!   model (and without its stream) being present at all.

use crate::WorkloadOp;
use p2p_overlay::churn::{ChurnDelta, ChurnOp};
use p2p_overlay::Graph;
use rand::rngs::SmallRng;

/// A lazy churn source, stepped in lockstep with the scenario timeline.
///
/// Boxed models forward transparently (see the blanket impl below), so a
/// spec-built `Box<dyn ChurnModel>` plugs into any generic driver.
pub trait ChurnModel {
    /// Called once after the initial overlay is built, before step 1 —
    /// e.g. to assign session lifetimes to the initial population.
    fn on_init(&mut self, _graph: &Graph, _rng: &mut SmallRng) {}

    /// Appends the ops due at `step` to `out`. Called exactly once per
    /// step, for steps `1..=steps` in increasing order, *before* the
    /// protocol's step executes. `graph` is the overlay as of the previous
    /// step (read-only: all mutation goes through the returned ops).
    fn ops_at(&mut self, step: u64, graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>);

    /// Feedback after this step's ops applied: which nodes joined and left
    /// ([`ChurnDelta`] identities, in application order). `delta.joined`
    /// contains exactly the nodes *this model's own* `Join` ops wired
    /// (under a [`CompositeModel`] the step's joiners are segmented per
    /// sub-model); `delta.left` is the step's full departure list.
    fn observe(&mut self, _step: u64, _delta: &ChurnDelta, _rng: &mut SmallRng) {}

    /// Feedback for churn this model did *not* emit — the scenario's
    /// scheduled ops (e.g. a `growing` schedule composed with a session
    /// workload). Session models adopt these joiners so scheduled arrivals
    /// live sessions too; most models ignore it.
    fn observe_external(&mut self, _step: u64, _delta: &ChurnDelta, _rng: &mut SmallRng) {}
}

impl<T: ChurnModel + ?Sized> ChurnModel for Box<T> {
    fn on_init(&mut self, graph: &Graph, rng: &mut SmallRng) {
        (**self).on_init(graph, rng);
    }

    fn ops_at(&mut self, step: u64, graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        (**self).ops_at(step, graph, rng, out);
    }

    fn observe(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        (**self).observe(step, delta, rng);
    }

    fn observe_external(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        (**self).observe_external(step, delta, rng);
    }
}

/// A materialized `(step, op)` schedule as a [`ChurnModel`] — the bridge
/// from the paper's three stylized timelines (growing / shrinking /
/// catastrophic, all plain sorted schedules) onto the model interface.
///
/// Emitting a schedule through the model path is *equivalent* to the
/// scheduled path: ops land before the same step's protocol step and apply
/// off the same stream, so the produced traces are bit-identical (pinned by
/// the workload integration tests).
#[derive(Clone, Debug)]
pub struct ScheduleModel {
    schedule: Vec<(u64, ChurnOp)>,
    cursor: usize,
}

impl ScheduleModel {
    /// Wraps a schedule (sorted by step internally).
    pub fn new(mut schedule: Vec<(u64, ChurnOp)>) -> Self {
        schedule.sort_by_key(|&(step, _)| step);
        ScheduleModel {
            schedule,
            cursor: 0,
        }
    }
}

impl ChurnModel for ScheduleModel {
    fn ops_at(
        &mut self,
        step: u64,
        _graph: &Graph,
        _rng: &mut SmallRng,
        out: &mut Vec<WorkloadOp>,
    ) {
        // `<=` so entries at step 0 (legal in hand-built schedules) fire at
        // the first model step rather than silently never.
        while let Some(&(at, op)) = self.schedule.get(self.cursor) {
            if at > step {
                break;
            }
            out.push(WorkloadOp::Churn(op));
            self.cursor += 1;
        }
    }
}

/// Several models sharing one timeline: ops concatenate in sub-model
/// order. Built from `+`-joined workload specs
/// (`flash:at=25,frac=0.5+regional:at=75`).
///
/// Each sub-model owns its own joiners: at `observe` time the step's
/// `delta.joined` is segmented by the join counts each sub-model emitted
/// (a `Join { count }` op always wires exactly `count` nodes, in op
/// order), and a sub-model sees only its segment — so a `FlashCrowd`
/// never adopts a co-composed `SessionModel`'s arrivals as its cohort, in
/// *either* composition order. Departures are global truth and passed
/// through whole.
pub struct CompositeModel {
    models: Vec<Box<dyn ChurnModel>>,
    /// Joins each sub-model emitted this step (set by `ops_at`).
    joins_emitted: Vec<usize>,
}

impl CompositeModel {
    /// Composes `models` (ops emitted in this order each step).
    pub fn new(models: Vec<Box<dyn ChurnModel>>) -> Self {
        let joins_emitted = vec![0; models.len()];
        CompositeModel {
            models,
            joins_emitted,
        }
    }
}

/// Total nodes the `Join` ops in `ops` will wire.
fn joins_in(ops: &[WorkloadOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            WorkloadOp::Churn(ChurnOp::Join { count, .. }) => *count,
            _ => 0,
        })
        .sum()
}

impl ChurnModel for CompositeModel {
    fn on_init(&mut self, graph: &Graph, rng: &mut SmallRng) {
        for m in &mut self.models {
            m.on_init(graph, rng);
        }
    }

    fn ops_at(&mut self, step: u64, graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        for (m, emitted) in self.models.iter_mut().zip(&mut self.joins_emitted) {
            let before = out.len();
            m.ops_at(step, graph, rng, out);
            *emitted = joins_in(&out[before..]);
        }
    }

    fn observe(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        let mut offset = 0usize;
        for (m, &joins) in self.models.iter_mut().zip(&self.joins_emitted) {
            let own = ChurnDelta {
                joined: delta.joined[offset..offset + joins].to_vec(),
                left: delta.left.clone(),
            };
            offset += joins;
            m.observe(step, &own, rng);
        }
        debug_assert_eq!(offset, delta.joined.len(), "join segmentation drift");
    }

    fn observe_external(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        for m in &mut self.models {
            m.observe_external(step, delta, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
    use p2p_sim::rng::small_rng;

    #[test]
    fn schedule_model_streams_in_order_including_step_zero() {
        let mut rng = small_rng(7);
        let g = HeterogeneousRandom::paper(50).build(&mut rng);
        let mut m = ScheduleModel::new(vec![
            (3, ChurnOp::Leave { count: 2 }),
            (0, ChurnOp::Leave { count: 1 }),
            (
                3,
                ChurnOp::Join {
                    count: 5,
                    max_degree: 10,
                },
            ),
        ]);
        let mut out = Vec::new();
        m.ops_at(1, &g, &mut rng, &mut out);
        assert_eq!(out, vec![WorkloadOp::Churn(ChurnOp::Leave { count: 1 })]);
        out.clear();
        m.ops_at(2, &g, &mut rng, &mut out);
        assert!(out.is_empty());
        m.ops_at(3, &g, &mut rng, &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        m.ops_at(4, &g, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn composite_concatenates_in_submodel_order() {
        let mut rng = small_rng(8);
        let g = HeterogeneousRandom::paper(50).build(&mut rng);
        let a = ScheduleModel::new(vec![(1, ChurnOp::Leave { count: 1 })]);
        let b = ScheduleModel::new(vec![(1, ChurnOp::Leave { count: 2 })]);
        let mut c = CompositeModel::new(vec![Box::new(a), Box::new(b)]);
        let mut out = Vec::new();
        c.ops_at(1, &g, &mut rng, &mut out);
        assert_eq!(
            out,
            vec![
                WorkloadOp::Churn(ChurnOp::Leave { count: 1 }),
                WorkloadOp::Churn(ChurnOp::Leave { count: 2 }),
            ]
        );
    }
}
