//! The op vocabulary workload models emit.

use p2p_overlay::churn::{ChurnDelta, ChurnOp};
use p2p_overlay::{Graph, NodeId};
use rand::Rng;

/// One churn action a workload model emits for a step.
///
/// [`Churn`](WorkloadOp::Churn) covers the count-based vocabulary the
/// paper's schedules use (uniform victims drawn at application time);
/// [`LeaveNodes`](WorkloadOp::LeaveNodes) names its victims — the form
/// session-tracking models need, where *which* node departs is decided by
/// its assigned lifetime, not by a draw at departure time.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadOp {
    /// A count-based op; victims/wiring resolved at application time.
    Churn(ChurnOp),
    /// Targeted departures: exactly these nodes leave (already-dead ids are
    /// skipped, so independently generated ops compose).
    LeaveNodes(Vec<NodeId>),
}

impl WorkloadOp {
    /// Applies the op, appending joined/left identities to `delta`.
    ///
    /// Draws (victim sampling, join wiring) come from `rng` — the run's
    /// *main* stream, exactly like scheduled ops, which is what makes a
    /// recorded op sequence replayable without the generating model.
    pub fn apply<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R, delta: &mut ChurnDelta) {
        let mut scratch = Vec::new();
        self.apply_with(g, rng, delta, &mut scratch);
    }

    /// [`apply`](Self::apply) with a caller-owned scratch buffer for the
    /// departing nodes' neighbor lists: drivers that apply a stream of ops
    /// every step reuse one buffer instead of allocating per op.
    pub fn apply_with<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        rng: &mut R,
        delta: &mut ChurnDelta,
        scratch: &mut Vec<NodeId>,
    ) {
        match self {
            WorkloadOp::Churn(op) => op.apply_into(g, rng, delta),
            WorkloadOp::LeaveNodes(nodes) => {
                for &n in nodes {
                    if g.remove_node_with(n, scratch) {
                        delta.left.push(n);
                    }
                }
            }
        }
    }

    /// Net population change if the op executed in full (targeted
    /// departures may remove fewer if some victims are already dead).
    pub fn nominal_net(&self) -> i64 {
        match self {
            WorkloadOp::Churn(ChurnOp::Join { count, .. }) => *count as i64,
            WorkloadOp::Churn(ChurnOp::Leave { count }) => -(*count as i64),
            // Fraction of the then-current size: unknown statically.
            WorkloadOp::Churn(ChurnOp::Catastrophe { .. }) => 0,
            WorkloadOp::LeaveNodes(nodes) => -(nodes.len() as i64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
    use p2p_sim::rng::small_rng;

    #[test]
    fn leave_nodes_removes_exactly_the_named_alive_nodes() {
        let mut rng = small_rng(11);
        let mut g = HeterogeneousRandom::paper(100).build(&mut rng);
        let mut delta = ChurnDelta::default();
        let targets = vec![NodeId(3), NodeId(40), NodeId(77)];
        WorkloadOp::LeaveNodes(targets.clone()).apply(&mut g, &mut rng, &mut delta);
        assert_eq!(delta.left, targets);
        assert_eq!(g.alive_count(), 97);
        // Re-applying skips the now-dead ids without error or delta noise.
        delta.clear();
        WorkloadOp::LeaveNodes(targets).apply(&mut g, &mut rng, &mut delta);
        assert!(delta.left.is_empty());
        assert_eq!(g.alive_count(), 97);
        g.check_invariants().unwrap();
    }

    #[test]
    fn targeted_departures_draw_nothing_from_the_stream() {
        // Replay correctness hinges on this: a LeaveNodes op must leave the
        // application stream untouched.
        let mut rng_a = small_rng(12);
        let mut rng_b = small_rng(12);
        let mut g = HeterogeneousRandom::paper(50).build(&mut small_rng(13));
        let mut delta = ChurnDelta::default();
        WorkloadOp::LeaveNodes(vec![NodeId(1), NodeId(2)]).apply(&mut g, &mut rng_a, &mut delta);
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn apply_with_matches_apply() {
        let build = || HeterogeneousRandom::paper(80).build(&mut small_rng(14));
        let mut a = build();
        let mut b = build();
        let mut rng_a = small_rng(15);
        let mut rng_b = small_rng(15);
        let mut delta_a = ChurnDelta::default();
        let mut delta_b = ChurnDelta::default();
        let mut scratch = Vec::new();
        let ops = [
            WorkloadOp::LeaveNodes(vec![NodeId(5), NodeId(9), NodeId(5)]),
            WorkloadOp::Churn(ChurnOp::Leave { count: 7 }),
            WorkloadOp::Churn(ChurnOp::Join {
                count: 4,
                max_degree: 10,
            }),
        ];
        for op in &ops {
            op.apply(&mut a, &mut rng_a, &mut delta_a);
            op.apply_with(&mut b, &mut rng_b, &mut delta_b, &mut scratch);
        }
        assert_eq!(delta_a, delta_b);
        assert_eq!(a.alive_count(), b.alive_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn nominal_net_signs() {
        assert_eq!(
            WorkloadOp::Churn(ChurnOp::Join {
                count: 4,
                max_degree: 10
            })
            .nominal_net(),
            4
        );
        assert_eq!(WorkloadOp::LeaveNodes(vec![NodeId(0)]).nominal_net(), -1);
    }
}
