//! # p2p-workload
//!
//! Churn workloads for the estimation experiments. The paper's dynamic
//! scenarios are three stylized schedules (growing / shrinking /
//! catastrophic); real deployments churn differently — heavy-tailed
//! session lengths, diurnal cycles, flash crowds, correlated regional
//! failures. This crate supplies those as *streaming* [`ChurnModel`]s
//! (O(alive) state, never a materialized schedule), a parseable
//! [`WorkloadSpec`] grammar (`pareto:alpha=1.5,mean=50`, composable with
//! `+`), and JSONL [`trace`] record/replay so any run's churn is
//! capturable and re-runnable bit for bit.
//!
//! Layering: models emit [`WorkloadOp`]s; the experiment runner applies
//! them and feeds applied identities back (the
//! [`ChurnDelta`](p2p_overlay::churn::ChurnDelta) handshake). Model draws
//! live on a dedicated seed stream; op application draws on the run's main
//! stream — see [`model`] for the determinism contract that makes replay
//! exact.

pub mod dist;
pub mod model;
pub mod models;
pub mod op;
pub mod pace;
pub mod spec;
pub mod trace;

pub use dist::LifetimeDist;
pub use model::{ChurnModel, CompositeModel, ScheduleModel};
pub use models::{DiurnalModel, FlashCrowd, RegionalFailure, SessionModel, SteadyModel};
pub use op::WorkloadOp;
pub use pace::{PacedOps, WallPacer};
pub use spec::{ModelSpec, WorkloadSpec};
pub use trace::{TraceHeader, TraceModel, TraceReader, TraceWriter};

use std::path::PathBuf;

/// Where a scenario's streamed churn comes from. `None` on a
/// [`Scenario`](../p2p_experiments/scenario/struct.Scenario.html) means the
/// materialized `schedule` alone drives churn (the paper's path).
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSource {
    /// Generate from a model spec.
    Model(WorkloadSpec),
    /// Generate from a model spec *and* record every emitted op to a JSONL
    /// trace at `path`.
    Record {
        /// The generating model.
        spec: WorkloadSpec,
        /// Trace destination (created/truncated per run).
        path: PathBuf,
    },
    /// Replay the ops recorded at `path`; no model, no workload draws.
    Replay(PathBuf),
}

impl WorkloadSource {
    /// The generating spec, when this source has one.
    pub fn spec(&self) -> Option<&WorkloadSpec> {
        match self {
            WorkloadSource::Model(spec) | WorkloadSource::Record { spec, .. } => Some(spec),
            WorkloadSource::Replay(_) => None,
        }
    }
}
