//! The concrete churn models.
//!
//! * [`SteadyModel`] — Poisson arrivals/departures per step (the
//!   [`SteadyChurn`](p2p_overlay::churn::SteadyChurn) workload on the model
//!   interface, with proper Poisson counts).
//! * [`SessionModel`] — heavy-tailed per-node session lengths
//!   (Pareto/Weibull), the IPFS-measurement-style workload: every node gets
//!   a lifetime at join, a min-heap streams the expiries out as targeted
//!   departures.
//! * [`DiurnalModel`] — sine-modulated Poisson rates (day/night cycles).
//! * [`FlashCrowd`] — a mass arrival at one step, optionally leaving again
//!   as a cohort after a hold period.
//! * [`RegionalFailure`] — a correlated failure: one region (nodes sharing
//!   `id mod regions`) fails together at a scheduled step.

use crate::dist::{poisson, LifetimeDist};
use crate::{ChurnModel, WorkloadOp};
use p2p_overlay::churn::{ChurnDelta, ChurnOp};
use p2p_overlay::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::f64::consts::TAU;

/// Poisson join/leave at constant expected rates.
#[derive(Clone, Copy, Debug)]
pub struct SteadyModel {
    /// Expected joins per step.
    pub arrival_rate: f64,
    /// Expected departures per step.
    pub departure_rate: f64,
    /// Degree cap for newly wired nodes.
    pub max_degree: usize,
}

/// Emits the step's Poisson joins/leaves (joins drawn first — the draw
/// order is part of the workload stream contract).
fn poisson_step(
    arrival: f64,
    departure: f64,
    max_degree: usize,
    rng: &mut SmallRng,
    out: &mut Vec<WorkloadOp>,
) {
    let joins = poisson(rng, arrival);
    let leaves = poisson(rng, departure);
    if joins > 0 {
        out.push(WorkloadOp::Churn(ChurnOp::Join {
            count: joins,
            max_degree,
        }));
    }
    if leaves > 0 {
        out.push(WorkloadOp::Churn(ChurnOp::Leave { count: leaves }));
    }
}

impl ChurnModel for SteadyModel {
    fn ops_at(
        &mut self,
        _step: u64,
        _graph: &Graph,
        rng: &mut SmallRng,
        out: &mut Vec<WorkloadOp>,
    ) {
        poisson_step(
            self.arrival_rate,
            self.departure_rate,
            self.max_degree,
            rng,
            out,
        );
    }
}

/// Sine-modulated Poisson churn: rates swing around their base by
/// `amplitude` over a `period`-step cycle, modelling diurnal activity.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalModel {
    /// Base expected joins per step.
    pub arrival_rate: f64,
    /// Base expected departures per step.
    pub departure_rate: f64,
    /// Steps per full day/night cycle.
    pub period: u64,
    /// Swing fraction in `[0, 1]`: rate × (1 + amplitude·sin).
    pub amplitude: f64,
    /// Phase offset in radians.
    pub phase: f64,
    /// Degree cap for newly wired nodes.
    pub max_degree: usize,
}

impl DiurnalModel {
    /// The rate multiplier at `step` (always ≥ 0 for amplitude ≤ 1).
    pub fn modulation(&self, step: u64) -> f64 {
        1.0 + self.amplitude * (TAU * step as f64 / self.period as f64 + self.phase).sin()
    }
}

impl ChurnModel for DiurnalModel {
    fn ops_at(&mut self, step: u64, _graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        let m = self.modulation(step);
        poisson_step(
            self.arrival_rate * m,
            self.departure_rate * m,
            self.max_degree,
            rng,
            out,
        );
    }
}

/// Heavy-tailed per-node sessions: every node draws a lifetime from
/// [`LifetimeDist`] when it appears (initial population included) and
/// departs — as a *targeted* op — when it expires. Arrivals are Poisson at
/// `arrival_rate`, defaulting to `initial population / mean lifetime` so
/// the expected size stays balanced.
///
/// State is one heap entry per alive session — O(alive), never O(steps).
#[derive(Clone, Debug)]
pub struct SessionModel {
    /// The session-length distribution.
    pub dist: LifetimeDist,
    /// Expected joins per step; `None` balances departures at `on_init`.
    pub arrival_rate: Option<f64>,
    /// Degree cap for newly wired nodes.
    pub max_degree: usize,
    /// Resolved arrival rate (set at `on_init`).
    rate: f64,
    /// Min-heap of `(expiry step, node id)`.
    expiries: BinaryHeap<Reverse<(u64, u32)>>,
}

impl SessionModel {
    /// A model with the given distribution and arrival policy.
    pub fn new(dist: LifetimeDist, arrival_rate: Option<f64>, max_degree: usize) -> Self {
        SessionModel {
            dist,
            arrival_rate,
            max_degree,
            rate: 0.0,
            expiries: BinaryHeap::new(),
        }
    }

    /// Sessions currently tracked (alive nodes plus not-yet-popped entries
    /// for nodes something else removed).
    pub fn tracked(&self) -> usize {
        self.expiries.len()
    }

    fn admit(&mut self, node: NodeId, now: u64, rng: &mut SmallRng) {
        // Lifetimes round up to at least one full step.
        let life = self.dist.sample(rng).ceil().max(1.0) as u64;
        self.expiries.push(Reverse((now + life, node.0)));
    }
}

impl ChurnModel for SessionModel {
    fn on_init(&mut self, graph: &Graph, rng: &mut SmallRng) {
        self.rate = self
            .arrival_rate
            .unwrap_or(graph.alive_count() as f64 / self.dist.mean());
        for node in graph.alive_nodes() {
            self.admit(node, 0, rng);
        }
    }

    fn ops_at(&mut self, step: u64, graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        let joins = poisson(rng, self.rate);
        if joins > 0 {
            out.push(WorkloadOp::Churn(ChurnOp::Join {
                count: joins,
                max_degree: self.max_degree,
            }));
        }
        let mut expired = Vec::new();
        while let Some(&Reverse((at, id))) = self.expiries.peek() {
            if at > step {
                break;
            }
            self.expiries.pop();
            // Nodes another workload (or a scheduled catastrophe) already
            // removed just fall out of the heap.
            if graph.is_alive(NodeId(id)) {
                expired.push(NodeId(id));
            }
        }
        if !expired.is_empty() {
            out.push(WorkloadOp::LeaveNodes(expired));
        }
    }

    fn observe(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        // Our own arrivals begin their sessions.
        for &node in &delta.joined {
            self.admit(node, step, rng);
        }
    }

    fn observe_external(&mut self, step: u64, delta: &ChurnDelta, rng: &mut SmallRng) {
        // Scheduled arrivals (a `growing` schedule under this workload)
        // live sessions too — otherwise they would be immortal and the
        // population would ratchet past any equilibrium.
        for &node in &delta.joined {
            self.admit(node, step, rng);
        }
    }
}

/// A flash crowd: `fraction` of the then-current population joins at step
/// `at`; with a `hold`, the same cohort departs together `hold` steps later
/// (the "event audience leaves when the stream ends" shape).
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    /// Arrival step.
    pub at: u64,
    /// Crowd size as a fraction of the population at `at`.
    pub fraction: f64,
    /// Steps until the cohort departs (`None`: it stays).
    pub hold: Option<u64>,
    /// Degree cap for newly wired nodes.
    pub max_degree: usize,
    /// Crowd size decided at `at`.
    join_count: usize,
    /// The cohort's identities (captured from the applied delta).
    cohort: Vec<NodeId>,
}

impl FlashCrowd {
    /// A crowd arriving at `at`. `hold`, when given, must be ≥ 1: the
    /// cohort's identities are only known after the join applies
    /// (`observe`), so a same-step departure could never fire.
    pub fn new(at: u64, fraction: f64, hold: Option<u64>, max_degree: usize) -> Self {
        assert_ne!(hold, Some(0), "flash crowd hold must be ≥ 1");
        FlashCrowd {
            at,
            fraction,
            hold,
            max_degree,
            join_count: 0,
            cohort: Vec::new(),
        }
    }
}

impl ChurnModel for FlashCrowd {
    fn ops_at(&mut self, step: u64, graph: &Graph, _rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        if step == self.at {
            self.join_count = (graph.alive_count() as f64 * self.fraction).round() as usize;
            if self.join_count > 0 {
                out.push(WorkloadOp::Churn(ChurnOp::Join {
                    count: self.join_count,
                    max_degree: self.max_degree,
                }));
            }
        }
        if let Some(hold) = self.hold {
            if step == self.at + hold && !self.cohort.is_empty() {
                let alive: Vec<NodeId> = self
                    .cohort
                    .drain(..)
                    .filter(|&n| graph.is_alive(n))
                    .collect();
                if !alive.is_empty() {
                    out.push(WorkloadOp::LeaveNodes(alive));
                }
            }
        }
    }

    fn observe(&mut self, step: u64, delta: &ChurnDelta, _rng: &mut SmallRng) {
        if step == self.at && self.hold.is_some() {
            // `delta.joined` is exactly this model's arrivals (the
            // composite segments joiners per sub-model), i.e. the crowd.
            debug_assert_eq!(delta.joined.len(), self.join_count);
            self.cohort = delta.joined.to_vec();
        }
    }
}

/// A correlated regional failure: the overlay is striped into `regions` by
/// `node id mod regions` (stable under growth), and at step `at` one
/// region — drawn from the workload stream — loses `fraction` of its alive
/// members simultaneously.
#[derive(Clone, Copy, Debug)]
pub struct RegionalFailure {
    /// Failure step.
    pub at: u64,
    /// Number of id-striped regions.
    pub regions: u32,
    /// Fraction of the failing region's members that die.
    pub fraction: f64,
}

impl ChurnModel for RegionalFailure {
    fn ops_at(&mut self, step: u64, graph: &Graph, rng: &mut SmallRng, out: &mut Vec<WorkloadOp>) {
        if step != self.at {
            return;
        }
        let region = rng.gen_range(0..self.regions);
        let mut members: Vec<NodeId> = graph
            .alive_nodes()
            .filter(|n| n.0 % self.regions == region)
            .collect();
        let k = (members.len() as f64 * self.fraction).round() as usize;
        if k < members.len() {
            // A *uniform* k-subset of the region (partial Fisher–Yates),
            // not the lowest-id prefix — otherwise a partial failure would
            // deterministically spare every recent joiner. Full-region
            // failures (k == len) draw nothing beyond the region choice.
            for i in 0..k {
                let j = rng.gen_range(i..members.len());
                members.swap(i, j);
            }
            members.truncate(k);
        }
        if !members.is_empty() {
            out.push(WorkloadOp::LeaveNodes(members));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
    use p2p_sim::rng::small_rng;

    /// Drives `model` for `steps`, applying everything, and returns the
    /// final graph.
    fn drive(model: &mut dyn ChurnModel, n: usize, steps: u64, seed: u64) -> Graph {
        let mut apply_rng = small_rng(seed);
        let mut wl_rng = small_rng(seed ^ 0x5eed);
        let mut g = HeterogeneousRandom::paper(n).build(&mut apply_rng);
        model.on_init(&g, &mut wl_rng);
        let mut ops = Vec::new();
        let mut delta = ChurnDelta::default();
        for step in 1..=steps {
            ops.clear();
            model.ops_at(step, &g, &mut wl_rng, &mut ops);
            delta.clear();
            for op in &ops {
                op.apply(&mut g, &mut apply_rng, &mut delta);
            }
            model.observe(step, &delta, &mut wl_rng);
        }
        g.check_invariants().unwrap();
        g
    }

    #[test]
    fn steady_model_drifts_with_rate_gap() {
        let mut m = SteadyModel {
            arrival_rate: 3.0,
            departure_rate: 1.0,
            max_degree: 10,
        };
        let g = drive(&mut m, 1_000, 300, 21);
        let n = g.alive_count() as i64;
        // Expected +2/step over 300 steps; allow Poisson slack.
        assert!((1_400..=1_800).contains(&n), "population {n}");
    }

    #[test]
    fn session_model_balances_population_and_targets_departures() {
        let mut m = SessionModel::new(
            LifetimeDist::Pareto {
                alpha: 2.0,
                mean: 30.0,
            },
            None,
            10,
        );
        let g = drive(&mut m, 2_000, 200, 22);
        let n = g.alive_count();
        // Balanced arrivals keep the expected size near the start (full
        // lifetimes for the initial population give a mild early dip).
        assert!((1_400..=2_600).contains(&n), "population {n}");
        assert!(m.tracked() >= n, "every alive node holds a session entry");
    }

    #[test]
    fn session_model_turns_over_the_population() {
        // Heavy churn: with mean lifetime ≪ timeline most of the original
        // population must be gone by the end.
        let mut m = SessionModel::new(
            LifetimeDist::Weibull {
                shape: 0.7,
                mean: 10.0,
            },
            None,
            10,
        );
        let g = drive(&mut m, 500, 100, 23);
        let survivors = (0..500u32).filter(|&i| g.is_alive(NodeId(i))).count();
        assert!(survivors < 100, "original survivors {survivors}");
        assert!(g.alive_count() > 150, "population collapsed");
    }

    #[test]
    fn diurnal_modulation_cycles() {
        let m = DiurnalModel {
            arrival_rate: 2.0,
            departure_rate: 2.0,
            period: 24,
            amplitude: 0.8,
            phase: 0.0,
            max_degree: 10,
        };
        assert!((m.modulation(0) - 1.0).abs() < 1e-9);
        assert!((m.modulation(6) - 1.8).abs() < 1e-9); // quarter period: peak
        assert!((m.modulation(18) - 0.2).abs() < 1e-9); // trough stays ≥ 0
        assert!((m.modulation(24) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_joins_then_leaves_as_a_cohort() {
        let mut m = FlashCrowd::new(5, 0.5, Some(10), 10);
        let mut apply_rng = small_rng(24);
        let mut wl_rng = small_rng(25);
        let mut g = HeterogeneousRandom::paper(400).build(&mut apply_rng);
        let mut ops = Vec::new();
        let mut delta = ChurnDelta::default();
        let mut sizes = Vec::new();
        for step in 1..=20 {
            ops.clear();
            m.ops_at(step, &g, &mut wl_rng, &mut ops);
            delta.clear();
            for op in &ops {
                op.apply(&mut g, &mut apply_rng, &mut delta);
            }
            m.observe(step, &delta, &mut wl_rng);
            sizes.push(g.alive_count());
        }
        assert_eq!(sizes[3], 400); // before the crowd
        assert_eq!(sizes[4], 600); // +50% at step 5
        assert_eq!(sizes[13], 600); // held through step 14
        assert_eq!(sizes[14], 400); // cohort gone at step 15
        g.check_invariants().unwrap();
    }

    #[test]
    fn flash_cohort_is_its_own_joiners_in_any_composition_order() {
        use crate::model::CompositeModel;

        // Composed with a join-producing model on either side, the crowd
        // that departs at `at + hold` must be exactly the nodes the flash
        // op wired — never the co-model's arrivals.
        for flash_first in [true, false] {
            let flash = FlashCrowd::new(5, 0.5, Some(10), 10);
            let steady = SteadyModel {
                arrival_rate: 3.0,
                departure_rate: 0.0,
                max_degree: 10,
            };
            let mut composite = if flash_first {
                CompositeModel::new(vec![Box::new(flash), Box::new(steady)])
            } else {
                CompositeModel::new(vec![Box::new(steady), Box::new(flash)])
            };
            let mut apply_rng = small_rng(27);
            let mut wl_rng = small_rng(28);
            let mut g = HeterogeneousRandom::paper(400).build(&mut apply_rng);
            composite.on_init(&g, &mut wl_rng);
            let mut ops = Vec::new();
            let mut delta = ChurnDelta::default();
            let mut crowd_slots: Vec<NodeId> = Vec::new();
            for step in 1..=20u64 {
                ops.clear();
                composite.ops_at(step, &g, &mut wl_rng, &mut ops);
                if step == 5 {
                    // Reconstruct which slots the flash join will occupy:
                    // slots are handed out in op order from num_slots().
                    let mut next = g.num_slots() as u32;
                    for op in &ops {
                        if let WorkloadOp::Churn(ChurnOp::Join { count, .. }) = op {
                            let slots: Vec<NodeId> =
                                (next..next + *count as u32).map(NodeId).collect();
                            // The flash join is the big one (~200 vs ~3).
                            if *count >= 100 {
                                crowd_slots = slots;
                            }
                            next += *count as u32;
                        }
                    }
                    assert!(!crowd_slots.is_empty(), "flash join emitted");
                }
                if step == 15 {
                    let evicted = ops
                        .iter()
                        .find_map(|op| match op {
                            WorkloadOp::LeaveNodes(nodes) => Some(nodes.clone()),
                            _ => None,
                        })
                        .expect("cohort departure emitted");
                    assert_eq!(
                        evicted, crowd_slots,
                        "flash_first={flash_first}: cohort must be the flash joiners"
                    );
                }
                delta.clear();
                for op in &ops {
                    op.apply(&mut g, &mut apply_rng, &mut delta);
                }
                composite.observe(step, &delta, &mut wl_rng);
            }
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn regional_partial_failure_is_not_the_id_prefix() {
        let mut m = RegionalFailure {
            at: 1,
            regions: 4,
            fraction: 0.5,
        };
        let g = drive(&mut m, 400, 2, 29);
        let dead: Vec<u32> = (0..400u32).filter(|&i| !g.is_alive(NodeId(i))).collect();
        assert_eq!(dead.len(), 50, "half of one 100-node stripe");
        let region = dead[0] % 4;
        assert!(dead.iter().all(|d| d % 4 == region), "one stripe only");
        // A uniform 50-subset of the stripe is (astronomically) unlikely to
        // be its lowest-id prefix — the old deterministic truncation.
        let prefix: Vec<u32> = (0..400u32).filter(|i| i % 4 == region).take(50).collect();
        assert_ne!(dead, prefix, "subset must be sampled, not truncated");
    }

    #[test]
    fn regional_failure_kills_one_stripe() {
        let mut m = RegionalFailure {
            at: 3,
            regions: 8,
            fraction: 1.0,
        };
        let g = drive(&mut m, 800, 5, 26);
        // Exactly one of the 8 stripes is empty; the others are intact.
        let mut empty = 0;
        for r in 0..8u32 {
            let alive = (0..800u32)
                .filter(|i| i % 8 == r && g.is_alive(NodeId(*i)))
                .count();
            if alive == 0 {
                empty += 1;
            } else {
                assert_eq!(alive, 100, "region {r} partially dead");
            }
        }
        assert_eq!(empty, 1);
        assert_eq!(g.alive_count(), 700);
    }
}
