//! JSONL churn-trace record and replay.
//!
//! Recording captures every op a workload model emitted, step by step, so
//! any run's churn is re-runnable bit for bit — including against a
//! different protocol, or on a machine without the generating model. The
//! format is one hand-rolled JSON object per line (no serde):
//!
//! ```text
//! {"event":"workload-trace","version":1,"initial_size":2000,"steps":100,"schedule_hash":14695981039346656037,"churn":"pareto:alpha=1.5,mean=50"}
//! {"step":3,"op":"join","count":2,"max_degree":10}
//! {"step":3,"op":"leave-nodes","nodes":[17,940]}
//! {"step":7,"op":"leave","count":1}
//! {"step":9,"op":"catastrophe","fraction":0.25}
//! ```
//!
//! Replay feeds the recorded ops through [`TraceModel`] — a [`ChurnModel`]
//! that consumes no workload randomness at all. Because op *application*
//! draws from the run's main stream in both modes (see
//! [`model`](crate::model)), a replayed run reproduces the original's
//! estimate series exactly under the recording's protocol and seed.
//!
//! Cross-protocol replay (same churn, a different estimator) is exact for
//! *identity-targeted* workloads — sessions, flash crowds, regional
//! failures, whose departures name their victims — because the op sequence
//! alone determines the population. Uniform-victim ops (`leave`,
//! `catastrophe`, and any scheduled `Leave`/`Catastrophe`) draw victims
//! from the main stream at application time, so under a different
//! protocol different nodes die and the populations can drift; the CLI
//! prints a note when a replayed trace carries such ops.

use crate::{ChurnModel, WorkloadOp};
use p2p_overlay::churn::ChurnOp;
use p2p_overlay::{Graph, NodeId};
use rand::rngs::SmallRng;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// The metadata line a trace starts with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Overlay size at step 0 (replay sanity check).
    pub initial_size: usize,
    /// Timeline length the trace was recorded over.
    pub steps: u64,
    /// Digest ([`schedule_digest`]) of the scenario's *scheduled* churn at
    /// record time. The trace captures only workload-emitted ops; scheduled
    /// ops re-execute from the replaying scenario, so that scenario must
    /// carry the same schedule or the replay silently diverges — replay
    /// checks this.
    pub schedule_hash: u64,
    /// The generating workload's spec string (informational).
    pub churn: String,
}

impl TraceHeader {
    /// Checks this trace can replay into a run of `initial_size` nodes over
    /// `steps` steps under the scheduled timeline digested as
    /// `schedule_hash` — one source of truth for the CLI's friendly errors
    /// and the runner's assertions.
    pub fn validate(
        &self,
        initial_size: usize,
        steps: u64,
        schedule_hash: u64,
    ) -> Result<(), TraceError> {
        if self.initial_size != initial_size {
            return Err(TraceError(format!(
                "trace was recorded on a {}-node overlay; this run starts at {initial_size}",
                self.initial_size
            )));
        }
        if self.steps != steps {
            return Err(TraceError(format!(
                "trace was recorded over {} steps; this run has {steps} — replaying would \
                 truncate or under-run the recorded churn",
                self.steps
            )));
        }
        if self.schedule_hash != schedule_hash {
            return Err(TraceError(format!(
                "trace was recorded under a different scheduled-churn timeline (its workload \
                 spec was `{}`); scheduled ops re-execute from the replaying scenario, which \
                 must match the recording's",
                self.churn
            )));
        }
        Ok(())
    }
}

/// FNV-1a digest of a scheduled-churn timeline, as stored in
/// [`TraceHeader::schedule_hash`]. Stable across runs and platforms
/// (f64 fractions hash by bit pattern).
pub fn schedule_digest(schedule: &[(u64, ChurnOp)]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for &(step, op) in schedule {
        mix(step);
        match op {
            ChurnOp::Join { count, max_degree } => {
                mix(1);
                mix(count as u64);
                mix(max_degree as u64);
            }
            ChurnOp::Leave { count } => {
                mix(2);
                mix(count as u64);
            }
            ChurnOp::Catastrophe { fraction } => {
                mix(3);
                mix(fraction.to_bits());
            }
        }
    }
    hash
}

/// Why a trace failed to read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TraceError {}

/// Streams `(step, op)` records out as JSONL.
pub struct TraceWriter<W: Write> {
    w: W,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file and writes the header.
    pub fn create(path: &Path, header: &TraceHeader) -> io::Result<Self> {
        TraceWriter::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer and emits the header line.
    pub fn new(mut w: W, header: &TraceHeader) -> io::Result<Self> {
        writeln!(
            w,
            "{{\"event\":\"workload-trace\",\"version\":{TRACE_VERSION},\
             \"initial_size\":{},\"steps\":{},\"schedule_hash\":{},\"churn\":\"{}\"}}",
            header.initial_size, header.steps, header.schedule_hash, header.churn
        )?;
        Ok(TraceWriter { w })
    }

    /// Records one step's ops (no-op for an empty batch).
    pub fn record(&mut self, step: u64, ops: &[WorkloadOp]) -> io::Result<()> {
        for op in ops {
            match op {
                WorkloadOp::Churn(ChurnOp::Join { count, max_degree }) => writeln!(
                    self.w,
                    "{{\"step\":{step},\"op\":\"join\",\"count\":{count},\
                     \"max_degree\":{max_degree}}}"
                )?,
                WorkloadOp::Churn(ChurnOp::Leave { count }) => writeln!(
                    self.w,
                    "{{\"step\":{step},\"op\":\"leave\",\"count\":{count}}}"
                )?,
                WorkloadOp::Churn(ChurnOp::Catastrophe { fraction }) => writeln!(
                    self.w,
                    "{{\"step\":{step},\"op\":\"catastrophe\",\"fraction\":{fraction}}}"
                )?,
                WorkloadOp::LeaveNodes(nodes) => {
                    write!(
                        self.w,
                        "{{\"step\":{step},\"op\":\"leave-nodes\",\"nodes\":["
                    )?;
                    for (i, n) in nodes.iter().enumerate() {
                        if i > 0 {
                            write!(self.w, ",")?;
                        }
                        write!(self.w, "{}", n.0)?;
                    }
                    writeln!(self.w, "]}}")?;
                }
            }
        }
        Ok(())
    }

    /// Flushes buffered output.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Extracts the raw text of `"key":<value>` from a (trusted, self-written)
/// JSON line: up to the matching `]` for arrays, the closing quote for
/// strings, the next `,`/`}` otherwise.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = match rest.as_bytes().first()? {
        b'[' => rest.find(']')? + 1,
        b'"' => rest[1..].find('"')? + 2,
        _ => rest.find([',', '}'])?,
    };
    Some(&rest[..end])
}

fn num_field<T: std::str::FromStr>(line: &str, key: &str, line_no: usize) -> Result<T, TraceError> {
    field(line, key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| TraceError(format!("trace line {line_no}: missing or bad `{key}`")))
}

/// Streams `(step, op)` records back out of a JSONL trace, lazily — the
/// file is never materialized in memory.
pub struct TraceReader<R: BufRead> {
    r: R,
    line_no: usize,
    buf: String,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file; returns its header and the op stream.
    pub fn open(path: &Path) -> Result<(TraceHeader, Self), TraceError> {
        let file = File::open(path)
            .map_err(|e| TraceError(format!("cannot open trace {}: {e}", path.display())))?;
        TraceReader::new(BufReader::new(file))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Reads the header line and wraps the remaining stream.
    pub fn new(mut r: R) -> Result<(TraceHeader, Self), TraceError> {
        let mut buf = String::new();
        r.read_line(&mut buf)
            .map_err(|e| TraceError(format!("cannot read trace header: {e}")))?;
        if field(&buf, "event") != Some("\"workload-trace\"") {
            return Err(TraceError(
                "not a workload trace (missing header line)".to_string(),
            ));
        }
        let version: u32 = num_field(&buf, "version", 1)?;
        if version != TRACE_VERSION {
            return Err(TraceError(format!(
                "trace version {version} unsupported (expected {TRACE_VERSION})"
            )));
        }
        let header = TraceHeader {
            initial_size: num_field(&buf, "initial_size", 1)?,
            steps: num_field(&buf, "steps", 1)?,
            schedule_hash: num_field(&buf, "schedule_hash", 1)?,
            churn: field(&buf, "churn")
                .map(|s| s.trim_matches('"').to_string())
                .unwrap_or_default(),
        };
        Ok((
            header,
            TraceReader {
                r,
                line_no: 1,
                buf: String::new(),
            },
        ))
    }

    /// The next `(step, op)` record, or `None` at end of trace.
    pub fn next_op(&mut self) -> Result<Option<(u64, WorkloadOp)>, TraceError> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            let n = self
                .r
                .read_line(&mut self.buf)
                .map_err(|e| TraceError(format!("trace line {}: {e}", self.line_no)))?;
            if n == 0 {
                return Ok(None);
            }
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            let step: u64 = num_field(line, "step", self.line_no)?;
            let op = match field(line, "op") {
                Some("\"join\"") => WorkloadOp::Churn(ChurnOp::Join {
                    count: num_field(line, "count", self.line_no)?,
                    max_degree: num_field(line, "max_degree", self.line_no)?,
                }),
                Some("\"leave\"") => WorkloadOp::Churn(ChurnOp::Leave {
                    count: num_field(line, "count", self.line_no)?,
                }),
                Some("\"catastrophe\"") => WorkloadOp::Churn(ChurnOp::Catastrophe {
                    fraction: num_field(line, "fraction", self.line_no)?,
                }),
                Some("\"leave-nodes\"") => {
                    let raw = field(line, "nodes").ok_or_else(|| {
                        TraceError(format!("trace line {}: missing `nodes`", self.line_no))
                    })?;
                    let inner = raw.trim_start_matches('[').trim_end_matches(']');
                    let nodes: Result<Vec<NodeId>, _> = if inner.is_empty() {
                        Ok(Vec::new())
                    } else {
                        inner
                            .split(',')
                            .map(|v| v.trim().parse().map(NodeId))
                            .collect()
                    };
                    WorkloadOp::LeaveNodes(nodes.map_err(|_| {
                        TraceError(format!("trace line {}: bad node id", self.line_no))
                    })?)
                }
                other => {
                    return Err(TraceError(format!(
                        "trace line {}: unknown op {:?}",
                        self.line_no, other
                    )))
                }
            };
            return Ok(Some((step, op)));
        }
    }
}

/// Replays a recorded trace as a [`ChurnModel`].
///
/// Consumes *no* workload randomness — replay determinism rests on the
/// recorded op sequence plus the run's main stream alone.
pub struct TraceModel<R: BufRead> {
    reader: TraceReader<R>,
    pending: Option<(u64, WorkloadOp)>,
}

impl TraceModel<BufReader<File>> {
    /// Opens `path`; returns the header (for caller-side validation
    /// against the scenario) and the model.
    pub fn open(path: &Path) -> Result<(TraceHeader, Self), TraceError> {
        let (header, reader) = TraceReader::open(path)?;
        Ok((header, TraceModel::from_reader(reader)))
    }
}

impl<R: BufRead> TraceModel<R> {
    /// Wraps an already-opened op stream.
    pub fn from_reader(reader: TraceReader<R>) -> Self {
        TraceModel {
            reader,
            pending: None,
        }
    }
}

impl<R: BufRead> ChurnModel for TraceModel<R> {
    fn ops_at(
        &mut self,
        step: u64,
        _graph: &Graph,
        _rng: &mut SmallRng,
        out: &mut Vec<WorkloadOp>,
    ) {
        loop {
            let (at, op) = match self.pending.take() {
                Some(rec) => rec,
                None => match self.reader.next_op() {
                    Ok(Some(rec)) => rec,
                    Ok(None) => return,
                    // ops_at cannot surface errors; a trace that was
                    // readable at open but corrupt mid-stream is fatal.
                    Err(e) => panic!("corrupt workload trace: {e}"),
                },
            };
            if at > step {
                self.pending = Some((at, op));
                return;
            }
            assert!(
                at == step,
                "workload trace out of order: op at step {at} read after step {step}"
            );
            out.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_sim::rng::small_rng;

    fn sample_ops() -> Vec<(u64, Vec<WorkloadOp>)> {
        vec![
            (
                1,
                vec![WorkloadOp::Churn(ChurnOp::Join {
                    count: 3,
                    max_degree: 10,
                })],
            ),
            (2, vec![]),
            (
                3,
                vec![
                    WorkloadOp::LeaveNodes(vec![NodeId(7), NodeId(19)]),
                    WorkloadOp::Churn(ChurnOp::Leave { count: 2 }),
                ],
            ),
            (
                5,
                vec![
                    WorkloadOp::Churn(ChurnOp::Catastrophe { fraction: 0.25 }),
                    WorkloadOp::LeaveNodes(vec![]),
                ],
            ),
        ]
    }

    fn write_trace(ops: &[(u64, Vec<WorkloadOp>)]) -> Vec<u8> {
        let mut buf = Vec::new();
        let header = TraceHeader {
            initial_size: 500,
            steps: 6,
            schedule_hash: 0xFEED,
            churn: "pareto:alpha=1.5,mean=50".to_string(),
        };
        let mut w = TraceWriter::new(&mut buf, &header).unwrap();
        for (step, batch) in ops {
            w.record(*step, batch).unwrap();
        }
        w.flush().unwrap();
        buf
    }

    #[test]
    fn write_read_round_trip() {
        let ops = sample_ops();
        let buf = write_trace(&ops);
        let (header, mut r) = TraceReader::new(buf.as_slice()).unwrap();
        assert_eq!(header.initial_size, 500);
        assert_eq!(header.steps, 6);
        assert_eq!(header.churn, "pareto:alpha=1.5,mean=50");
        let flat: Vec<(u64, WorkloadOp)> = ops
            .iter()
            .flat_map(|(s, batch)| batch.iter().cloned().map(move |op| (*s, op)))
            .collect();
        let mut read = Vec::new();
        while let Some(rec) = r.next_op().unwrap() {
            read.push(rec);
        }
        assert_eq!(read, flat);
    }

    #[test]
    fn trace_model_streams_by_step() {
        let ops = sample_ops();
        let buf = write_trace(&ops);
        let (_, reader) = TraceReader::new(buf.as_slice()).unwrap();
        let mut model = TraceModel::from_reader(reader);
        let g = p2p_overlay::Graph::with_nodes(10);
        let mut rng = small_rng(1);
        let mut out = Vec::new();
        for step in 1..=6u64 {
            out.clear();
            model.ops_at(step, &g, &mut rng, &mut out);
            let expected: Vec<&WorkloadOp> = ops
                .iter()
                .filter(|(s, _)| *s == step)
                .flat_map(|(_, b)| b.iter())
                .collect();
            assert_eq!(out.iter().collect::<Vec<_>>(), expected, "step {step}");
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_versions() {
        assert!(TraceReader::new(&b"not json\n"[..]).is_err());
        assert!(TraceReader::new(&b"{\"event\":\"other\"}\n"[..]).is_err());
        let future = b"{\"event\":\"workload-trace\",\"version\":99,\"initial_size\":1,\"steps\":1,\"churn\":\"\"}\n";
        assert!(TraceReader::new(&future[..]).is_err());
        // Bad body line surfaces as an error with its line number.
        let bad = b"{\"event\":\"workload-trace\",\"version\":1,\"initial_size\":1,\"steps\":1,\"schedule_hash\":0,\"churn\":\"\"}\n{\"step\":1,\"op\":\"warp\"}\n";
        let (_, mut r) = TraceReader::new(&bad[..]).unwrap();
        let err = r.next_op().unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
    }

    #[test]
    fn field_extraction_handles_all_value_shapes() {
        let line = "{\"a\":3,\"b\":[1,2],\"c\":\"x,y\",\"d\":0.5}";
        assert_eq!(field(line, "a"), Some("3"));
        assert_eq!(field(line, "b"), Some("[1,2]"));
        assert_eq!(field(line, "c"), Some("\"x,y\""));
        assert_eq!(field(line, "d"), Some("0.5"));
        assert_eq!(field(line, "e"), None);
    }
}
