//! Wall-clock pacing: the step grid of the deployed (non-simulated) backend.
//!
//! The DES owns a virtual clock, so "one step every `step_ticks`" is free.
//! A loopback cluster runs on the wall clock: the coordinator applies churn
//! ops and the node runtimes fire protocol steps on a shared real-time
//! cadence of one step per `step_ms` milliseconds (matching the network
//! model's one-tick-per-millisecond convention). [`WallPacer`] is that
//! metronome — anchored once, then queried either blockingly
//! ([`wait_next`](WallPacer::wait_next)) or from an event loop
//! ([`poll`](WallPacer::poll) / [`until_next`](WallPacer::until_next)).
//!
//! A pacer never skips steps: if the process falls behind (a long handler,
//! a stopped laptop), due steps are yielded back-to-back until the grid is
//! caught up, exactly like the DES dispatching every step control event.
//! Churn models therefore see the same dense step sequence on both
//! backends.

use crate::model::ChurnModel;
use crate::op::WorkloadOp;
use p2p_overlay::Graph;
use rand::rngs::SmallRng;
use std::time::{Duration, Instant};

/// A wall-clock metronome over the scenario's step grid.
#[derive(Clone, Debug)]
pub struct WallPacer {
    start: Instant,
    step: Duration,
    next_step: u64,
}

impl WallPacer {
    /// A pacer anchored *now*, firing step 1 after `step_ms` milliseconds.
    ///
    /// # Panics
    /// Panics if `step_ms` is zero — a zero-width grid never sleeps.
    pub fn new(step_ms: u64) -> Self {
        assert!(step_ms > 0, "the wall-clock step cadence must be positive");
        WallPacer {
            // audit:allow(wall-clock): WallPacer IS the wall-clock boundary — it paces live cluster runs; DES runs never construct one
            start: Instant::now(),
            step: Duration::from_millis(step_ms),
            next_step: 1,
        }
    }

    /// The step [`poll`](Self::poll)/[`wait_next`](Self::wait_next) yields
    /// next (steps count from 1, like the DES timeline).
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// The wall-clock deadline of `step`.
    pub fn deadline(&self, step: u64) -> Instant {
        self.start + self.step.saturating_mul(step.min(u32::MAX as u64) as u32)
    }

    /// Time remaining until the next step boundary (zero if it is due).
    pub fn until_next(&self) -> Duration {
        self.deadline(self.next_step)
            // audit:allow(wall-clock): comparing against the pacer's own wall anchor; cluster-only path
            .saturating_duration_since(Instant::now())
    }

    /// Yields the next step if its boundary has passed, without blocking.
    pub fn poll(&mut self) -> Option<u64> {
        // audit:allow(wall-clock): step-boundary check against the pacer's wall anchor; cluster-only path
        if Instant::now() < self.deadline(self.next_step) {
            return None;
        }
        let step = self.next_step;
        self.next_step += 1;
        Some(step)
    }

    /// Sleeps to the next step boundary and yields the step number.
    pub fn wait_next(&mut self) -> u64 {
        // audit:allow(wall-sleep): blocking to the next wall step is this type's purpose; nothing in the DES path calls it
        std::thread::sleep(self.until_next());
        let step = self.next_step;
        self.next_step += 1;
        step
    }
}

/// A churn model driven by the wall clock: at each due step boundary it
/// asks the wrapped [`ChurnModel`] for that step's ops — the deployed
/// counterpart of the DES driver's per-step `ops_at` call. The coordinator
/// applies the ops to its overlay replica and broadcasts them; every
/// replica applies them with an identically seeded rng, keeping the graph
/// views in lockstep without shipping graph state.
pub struct PacedOps<M> {
    /// The generating model.
    pub model: M,
    pacer: WallPacer,
}

impl<M: ChurnModel> PacedOps<M> {
    /// Paces `model` at one step per `step_ms` wall milliseconds.
    pub fn new(model: M, step_ms: u64) -> Self {
        PacedOps {
            model,
            pacer: WallPacer::new(step_ms),
        }
    }

    /// The underlying metronome.
    pub fn pacer(&self) -> &WallPacer {
        &self.pacer
    }

    /// If a step boundary has passed, returns `(step, ops)` for it —
    /// `None` while the next boundary is still in the future. Call in a
    /// loop: a process that fell behind catches up one step per call.
    pub fn ops_due(&mut self, graph: &Graph, rng: &mut SmallRng) -> Option<(u64, Vec<WorkloadOp>)> {
        let step = self.pacer.poll()?;
        let mut ops = Vec::new();
        self.model.ops_at(step, graph, rng, &mut ops);
        Some((step, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use p2p_sim::rng::small_rng;

    #[test]
    fn pacer_yields_the_dense_step_sequence() {
        let mut pacer = WallPacer::new(1);
        std::thread::sleep(Duration::from_millis(5));
        // Behind by several steps: they come back-to-back, never skipped.
        let a = pacer.poll().unwrap();
        let b = pacer.poll().unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(pacer.next_step(), 3);
    }

    #[test]
    fn wait_next_blocks_until_the_boundary() {
        let mut pacer = WallPacer::new(10);
        let t0 = Instant::now();
        assert_eq!(pacer.wait_next(), 1);
        assert!(t0.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn paced_ops_pull_from_the_model_per_due_step() {
        let model = WorkloadSpec::parse("steady:join=2,leave=2")
            .unwrap()
            .build(10);
        let mut paced = PacedOps::new(model, 1);
        let graph = Graph::with_nodes(50);
        let mut rng = small_rng(7);
        std::thread::sleep(Duration::from_millis(3));
        let (step, ops) = paced.ops_due(&graph, &mut rng).unwrap();
        assert_eq!(step, 1);
        // steady:rate=2 swaps two nodes per step: one join op, departures.
        assert!(!ops.is_empty());
    }
}
