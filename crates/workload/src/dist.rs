//! The random distributions the workload models draw from.
//!
//! The vendored `rand` stand-in only provides uniform primitives, so the
//! samplers here are built from inverse CDFs and classic transforms:
//! Knuth's product method (small-rate Poisson), a normal approximation via
//! Box–Muller (large-rate Poisson), and inverse-CDF Pareto/Weibull for the
//! heavy-tailed session lengths that IPFS-style churn measurements report.

use rand::Rng;
use std::f64::consts::{PI, TAU};

/// One standard-normal draw (Box–Muller; consumes exactly two uniforms).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 1 − U ∈ (0, 1] keeps the log finite.
    let u1 = 1.0 - rng.gen::<f64>();
    let u2 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// A Poisson draw with rate `lambda`.
///
/// Knuth's product method below rate 30 (exact, O(λ) uniforms), a rounded
/// `N(λ, λ)` approximation above it (flash-crowd-scale rates would
/// otherwise cost thousands of draws per step). `lambda ≤ 0` returns 0
/// without consuming the stream.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    debug_assert!(lambda.is_finite());
    if lambda <= 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0usize;
        let mut product = 1.0f64;
        loop {
            product *= rng.gen::<f64>();
            if product < limit {
                return k;
            }
            k += 1;
        }
    }
    (lambda + lambda.sqrt() * gaussian(rng)).round().max(0.0) as usize
}

/// Γ(x) via the Lanczos approximation (g = 7, 9 coefficients) — used to
/// convert a Weibull mean into its scale parameter. Relative error is below
/// 1e-10 on the arguments the lifetime distributions produce.
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // The reference coefficient set, verbatim — some digits exceed f64
    // precision and round on parse, which is expected.
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_59,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula for the left half-plane.
        PI / ((PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        TAU.sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A session-length distribution: how long a node stays in the overlay, in
/// timeline steps.
///
/// Both families are parameterized by their *mean* so specs read as "mean
/// session of M steps, tail shape X" — the natural axis when matching
/// measured churn (e.g. the heavy-tailed IPFS session lengths).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LifetimeDist {
    /// Pareto with tail index `alpha` (> 1 for a finite mean): most
    /// sessions are short, a heavy tail of near-permanent peers remains.
    Pareto {
        /// Tail index (smaller ⇒ heavier tail).
        alpha: f64,
        /// Mean session length in steps.
        mean: f64,
    },
    /// Weibull with shape `shape` (< 1 gives the heavy-tailed,
    /// high-infant-mortality profile churn measurements report).
    Weibull {
        /// Shape parameter.
        shape: f64,
        /// Mean session length in steps.
        mean: f64,
    },
}

impl LifetimeDist {
    /// The distribution's mean session length in steps.
    pub fn mean(&self) -> f64 {
        match *self {
            LifetimeDist::Pareto { mean, .. } | LifetimeDist::Weibull { mean, .. } => mean,
        }
    }

    /// Draws one session length (consumes exactly one uniform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 − U ∈ (0, 1] keeps both inverse CDFs finite.
        let u = 1.0 - rng.gen::<f64>();
        match *self {
            LifetimeDist::Pareto { alpha, mean } => {
                let x_m = mean * (alpha - 1.0) / alpha;
                x_m * u.powf(-1.0 / alpha)
            }
            LifetimeDist::Weibull { shape, mean } => {
                let scale = mean / gamma(1.0 + 1.0 / shape);
                scale * (-u.ln()).powf(1.0 / shape)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_sim::rng::small_rng;

    #[test]
    fn poisson_matches_rate() {
        let mut rng = small_rng(1);
        for lambda in [0.3f64, 2.5, 20.0, 500.0] {
            let n = 20_000;
            let mean = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            let rel = (mean - lambda).abs() / lambda;
            assert!(rel < 0.05, "λ={lambda}: sample mean {mean}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn gaussian_is_standard() {
        let mut rng = small_rng(2);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gamma_known_values() {
        // Γ(n) = (n−1)!, Γ(1/2) = √π.
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma(0.5) - PI.sqrt()).abs() < 1e-9);
        // Γ(1 + 1/0.5) = Γ(3) = 2 — the Weibull shape=0.5 conversion.
        assert!((gamma(3.0) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn lifetime_means_match_parameterization() {
        let mut rng = small_rng(3);
        let n = 200_000;
        for dist in [
            LifetimeDist::Pareto {
                alpha: 2.5,
                mean: 40.0,
            },
            LifetimeDist::Weibull {
                shape: 0.7,
                mean: 40.0,
            },
        ] {
            let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            let rel = (mean - dist.mean()).abs() / dist.mean();
            assert!(rel < 0.1, "{dist:?}: sample mean {mean}");
            assert_eq!(dist.mean(), 40.0);
        }
    }

    #[test]
    fn pareto_is_heavier_tailed_than_weibull_at_same_mean() {
        // Same mean, but the α=1.5 Pareto should show far larger extremes
        // than a mild Weibull — that is what "heavy-tailed" buys.
        let mut rng = small_rng(4);
        let n = 50_000;
        let pareto = LifetimeDist::Pareto {
            alpha: 1.5,
            mean: 40.0,
        };
        let weibull = LifetimeDist::Weibull {
            shape: 1.0,
            mean: 40.0,
        };
        let max_p = (0..n).map(|_| pareto.sample(&mut rng)).fold(0.0, f64::max);
        let max_w = (0..n).map(|_| weibull.sample(&mut rng)).fold(0.0, f64::max);
        assert!(
            max_p > 5.0 * max_w,
            "pareto max {max_p} vs weibull max {max_w}"
        );
        // Every draw is a positive session length.
        assert!((0..1_000).all(|_| pareto.sample(&mut rng) > 0.0));
    }
}
