//! Deterministic metrics for the simulator and the real-socket runtime.
//!
//! A hand-rolled metric registry — u64 counters, u64 gauges, and
//! fixed-bucket log2 histograms — with interned `&'static str` keys and
//! zero allocation on the hot path after registration. Snapshots are
//! sliced by *sim time* (`Snapshot { tick, .. }`), never wall clocks, so
//! two identical runs emit byte-identical telemetry. The only wall-clock
//! telemetry in the workspace sits at the node runtime's pacer boundary,
//! where real sockets already make wall time part of the contract.
//!
//! The crate deliberately has no dependencies: the registry is shared by
//! `crates/experiments` (DES runs, `repro run --metrics`) and
//! `crates/node` (live cluster introspection), and nothing here may pull
//! an allocator-hungry or clock-reading crate into the sim path.
//!
//! Determinism contract: mutator calls (`counter_add`, `gauge_set`,
//! `hist_observe`) must sit in *statement position* — never inside an
//! RNG-draw or event-ordering expression — which the `telemetry-side-effect`
//! audit rule enforces workspace-wide.

use std::fmt::Write as _;
use std::io::{self, Write};

/// Number of log2 buckets: values up to `2^63` land in bucket 63.
pub const LOG2_BUCKETS: usize = 64;

/// Handle for a registered counter. Cheap to copy; valid only for the
/// [`Registry`] that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle for a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle for a registered log2 histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(u32);

/// Fixed-bucket base-2 histogram: bucket `b` counts values `v` with
/// `floor(log2(v)) + 1 == b` (zero lands in bucket 0). Merging across
/// shards is element-wise addition, so a fold over shard snapshots in a
/// fixed order is associative and reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; LOG2_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            count: 0,
            sum: 0,
            buckets: [0; LOG2_BUCKETS],
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 − leading_zeros(v)`,
/// capped at 63.
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(LOG2_BUCKETS - 1)
    }
}

impl Log2Histogram {
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[log2_bucket(v)] += 1;
    }

    /// Element-wise accumulate (saturating, so the merge stays total).
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// The metric registry. Registration interns a `&'static str` key and
/// returns a typed index; after registration every mutation is a bare
/// array write — no allocation, no hashing, no locks.
#[derive(Default)]
pub struct Registry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<u64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Log2Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-resolves) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return CounterId(i as u32);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId((self.counter_names.len() - 1) as u32)
    }

    /// Registers (or re-resolves) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId((self.gauge_names.len() - 1) as u32)
    }

    /// Registers (or re-resolves) a log2 histogram by name.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| *n == name) {
            return HistId(i as u32);
        }
        self.hist_names.push(name);
        self.hists.push(Log2Histogram::default());
        HistId((self.hist_names.len() - 1) as u32)
    }

    #[inline]
    pub fn counter_add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0 as usize] = v;
    }

    #[inline]
    pub fn hist_observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0 as usize].observe(v);
    }

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0 as usize]
    }

    /// Captures every registered metric at sim tick `tick`, in
    /// registration order (deterministic across identical runs).
    pub fn snapshot(&self, tick: u64) -> Snapshot {
        Snapshot {
            tick,
            series: String::new(),
            counters: self
                .counter_names
                .iter()
                .zip(self.counters.iter())
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
            gauges: self
                .gauge_names
                .iter()
                .zip(self.gauges.iter())
                .map(|(n, v)| (n.to_string(), *v))
                .collect(),
            hists: self
                .hist_names
                .iter()
                .zip(self.hists.iter())
                .map(|(n, h)| (n.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// One sim-time-sliced telemetry slice: every registered metric, in
/// registration order. `series` labels the run (protocol class, sweep
/// point, or `cluster` for merged shard telemetry); empty means unlabeled.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    pub tick: u64,
    pub series: String,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub hists: Vec<(String, Log2Histogram)>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters, gauges, and histogram buckets
    /// accumulate element-wise. The metric sets must match name-for-name
    /// in order (shards of one cluster register identically), which makes
    /// a fold over shards in fixed index order associative.
    pub fn merge_from(&mut self, other: &Snapshot) -> Result<(), String> {
        let schema_err = |kind: &str, a: &str, b: &str| {
            Err(format!(
                "snapshot merge: {kind} mismatch ({a:?} vs {b:?}) — shards must register \
                 identical metric sets"
            ))
        };
        if self.counters.len() != other.counters.len()
            || self.gauges.len() != other.gauges.len()
            || self.hists.len() != other.hists.len()
        {
            return Err("snapshot merge: metric count mismatch between shards".to_string());
        }
        for ((an, av), (bn, bv)) in self.counters.iter_mut().zip(other.counters.iter()) {
            if an != bn {
                return schema_err("counter", an, bn);
            }
            *av = av.saturating_add(*bv);
        }
        for ((an, av), (bn, bv)) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            if an != bn {
                return schema_err("gauge", an, bn);
            }
            *av = av.saturating_add(*bv);
        }
        for ((an, ah), (bn, bh)) in self.hists.iter_mut().zip(other.hists.iter()) {
            if an != bn {
                return schema_err("histogram", an, bn);
            }
            ah.merge(bh);
        }
        Ok(())
    }

    /// Renders the snapshot as one JSONL line (no trailing newline),
    /// following the workspace sink conventions (`"event"` discriminator
    /// first). Metric order is registration order, so identical runs emit
    /// identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"event\":\"metrics\",\"series\":\"");
        json_escape_into(&mut s, &self.series);
        let _ = write!(s, "\",\"tick\":{},\"counters\":{{", self.tick);
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, n);
            let _ = write!(s, "\":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, n);
            let _ = write!(s, "\":{v}");
        }
        s.push_str("},\"hists\":{");
        for (i, (n, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            json_escape_into(&mut s, n);
            let _ = write!(
                s,
                "\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{b}");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Strict inverse of [`Snapshot::to_jsonl`]: parses exactly the shape
    /// that encoder emits and rejects everything else, so
    /// `decode(encode(s)) == s` is a checkable property and a corrupted
    /// metrics file fails loudly instead of skewing a merge.
    pub fn from_jsonl(line: &str) -> Result<Snapshot, String> {
        let mut p = Parser::new(line.trim_end_matches('\n'));
        p.expect("{\"event\":\"metrics\",\"series\":")?;
        let series = p.string()?;
        p.expect(",\"tick\":")?;
        let tick = p.u64()?;
        p.expect(",\"counters\":{")?;
        let counters = p.u64_map()?;
        p.expect(",\"gauges\":{")?;
        let gauges = p.u64_map()?;
        p.expect(",\"hists\":{")?;
        let mut hists = Vec::new();
        if !p.eat('}') {
            loop {
                let name = p.string()?;
                p.expect(":{\"count\":")?;
                let count = p.u64()?;
                p.expect(",\"sum\":")?;
                let sum = p.u64()?;
                p.expect(",\"buckets\":[")?;
                let mut buckets = [0u64; LOG2_BUCKETS];
                for (j, slot) in buckets.iter_mut().enumerate() {
                    if j > 0 {
                        p.expect(",")?;
                    }
                    *slot = p.u64()?;
                }
                p.expect("]}")?;
                hists.push((
                    name,
                    Log2Histogram {
                        count,
                        sum,
                        buckets,
                    },
                ));
                if !p.eat(',') {
                    break;
                }
            }
            p.expect("}")?;
        }
        p.expect("}")?;
        p.finish()?;
        Ok(Snapshot {
            tick,
            series,
            counters,
            gauges,
            hists,
        })
    }
}

/// Escapes a string for embedding in a JSON literal, mirroring the
/// experiments sink conventions (quote, backslash, control chars).
fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Minimal strict cursor over a snapshot line.
struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { s, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn expect(&mut self, lit: &str) -> Result<(), String> {
        if self.rest().starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!(
                "metrics line: expected {lit:?} at byte {}, found {:?}…",
                self.pos,
                &self.rest()[..self.rest().len().min(24)]
            ))
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let digits: usize = self.rest().bytes().take_while(u8::is_ascii_digit).count();
        if digits == 0 {
            return Err(format!(
                "metrics line: expected integer at byte {}",
                self.pos
            ));
        }
        let v = self.rest()[..digits]
            .parse::<u64>()
            .map_err(|e| format!("metrics line: bad integer at byte {}: {e}", self.pos))?;
        self.pos += digits;
        Ok(v)
    }

    /// A quoted JSON string with the escape set the encoder produces.
    fn string(&mut self) -> Result<String, String> {
        if !self.eat('"') {
            return Err(format!(
                "metrics line: expected string at byte {}",
                self.pos
            ));
        }
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err("metrics line: unterminated string".to_string());
            };
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((j, 'u')) => {
                        let hex = self
                            .rest()
                            .get(j + 1..j + 5)
                            .ok_or("metrics line: truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "metrics line: bad \\u escape")?;
                        out.push(
                            char::from_u32(code).ok_or("metrics line: invalid \\u code point")?,
                        );
                        // Skip the 4 hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    _ => return Err("metrics line: unknown escape".to_string()),
                },
                c => out.push(c),
            }
        }
    }

    /// `"name":123,...}` — the body of a counters/gauges object, after the
    /// opening brace has been consumed.
    fn u64_map(&mut self) -> Result<Vec<(String, u64)>, String> {
        let mut out = Vec::new();
        if self.eat('}') {
            return Ok(out);
        }
        loop {
            let name = self.string()?;
            self.expect(":")?;
            let v = self.u64()?;
            out.push((name, v));
            if !self.eat(',') {
                break;
            }
        }
        self.expect("}")?;
        Ok(out)
    }

    fn finish(&self) -> Result<(), String> {
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(format!(
                "metrics line: trailing bytes at {}: {:?}…",
                self.pos,
                &self.rest()[..self.rest().len().min(24)]
            ))
        }
    }
}

/// Writes interval snapshots as JSONL, following the workspace sink
/// conventions (one object per line, first-error latching).
pub struct TelemetrySink<W: Write> {
    w: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> TelemetrySink<W> {
    pub fn new(w: W) -> Self {
        TelemetrySink {
            w,
            written: 0,
            error: None,
        }
    }

    /// Writes one snapshot line; after the first I/O error the sink goes
    /// quiet and [`TelemetrySink::error`] reports the latched failure.
    pub fn write(&mut self, snap: &Snapshot) {
        if self.error.is_some() {
            return;
        }
        let line = snap.to_jsonl();
        if let Err(e) = writeln!(self.w, "{line}") {
            self.error = Some(e);
            return;
        }
        self.written += 1;
    }

    pub fn lines_written(&self) -> u64 {
        self.written
    }

    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer (first latched error wins).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the tests' stand-in for a property-test
    /// generator, keeping the crate dependency-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn sample_snapshot(seed: u64, series: &str) -> Snapshot {
        let mut rng = Rng(seed | 1);
        let mut reg = Registry::new();
        let c1 = reg.counter("net.sent");
        let c2 = reg.counter("net.dropped");
        let g1 = reg.gauge("overlay.alive");
        let h1 = reg.histogram("engine.batch_len");
        for _ in 0..64 {
            reg.counter_add(c1, rng.next() % 1000);
            reg.counter_add(c2, rng.next() % 10);
            reg.gauge_set(g1, rng.next() % 100_000);
            reg.hist_observe(h1, rng.next() % (1 << 20));
        }
        let mut s = reg.snapshot(rng.next() % 10_000);
        s.series = series.to_string();
        s
    }

    #[test]
    fn log2_bucket_edges() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), 63);
    }

    #[test]
    fn registry_interns_and_dedupes() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        let g = reg.gauge("x"); // separate namespace from counters
        reg.counter_add(a, 3);
        reg.gauge_set(g, 9);
        let snap = reg.snapshot(7);
        assert_eq!(snap.counters, vec![("x".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("x".to_string(), 9)]);
        assert_eq!(snap.tick, 7);
    }

    #[test]
    fn snapshot_encode_decode_is_identity() {
        // Property: decode ∘ encode == id, across randomized registries
        // and awkward series names.
        for seed in 1..=40u64 {
            let snap = sample_snapshot(seed, "agg\"≈\\n\tclass");
            let line = snap.to_jsonl();
            let back = Snapshot::from_jsonl(&line).expect("decodes");
            assert_eq!(back, snap, "seed {seed}");
            assert_eq!(back.to_jsonl(), line, "re-encode seed {seed}");
        }
        // Empty registry round-trips too.
        let empty = Registry::new().snapshot(0);
        assert_eq!(Snapshot::from_jsonl(&empty.to_jsonl()).unwrap(), empty);
    }

    #[test]
    fn decoder_is_strict() {
        let good = sample_snapshot(3, "s").to_jsonl();
        assert!(
            Snapshot::from_jsonl(&format!("{good} ")).is_err(),
            "trailing bytes"
        );
        assert!(
            Snapshot::from_jsonl(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        assert!(
            Snapshot::from_jsonl(&good.replace("\"event\":\"metrics\"", "\"event\":\"meta\""))
                .is_err(),
            "wrong event"
        );
        assert!(
            Snapshot::from_jsonl(&good.replace("\"tick\":", "\"tick\": ")).is_err(),
            "whitespace variants are not canonical"
        );
    }

    #[test]
    fn histogram_merge_is_associative_and_order_fixed() {
        // Property: folding shard histograms in a fixed order is
        // associative — (a⊕b)⊕c == a⊕(b⊕c) — and element-wise addition
        // is commutative, so any bracketing of the fixed shard-index fold
        // agrees.
        for seed in 1..=25u64 {
            let mut rng = Rng(seed);
            let mut shards: Vec<Log2Histogram> = Vec::new();
            for _ in 0..3 {
                let mut h = Log2Histogram::default();
                for _ in 0..200 {
                    h.observe(rng.next() % (1 << 32));
                }
                shards.push(h);
            }
            let (a, b, c) = (&shards[0], &shards[1], &shards[2]);
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "associativity, seed {seed}");
            let mut ba = b.clone();
            ba.merge(a);
            let mut ab = a.clone();
            ab.merge(b);
            assert_eq!(ab, ba, "element-wise commutativity, seed {seed}");
            assert_eq!(ab.count, a.count + b.count);
        }
    }

    #[test]
    fn snapshot_merge_is_associative_across_shards() {
        let shards: Vec<Snapshot> = (1..=3).map(|s| sample_snapshot(s, "shard")).collect();
        let mut left = shards[0].clone();
        left.merge_from(&shards[1]).unwrap();
        left.merge_from(&shards[2]).unwrap();
        let mut bc = shards[1].clone();
        bc.merge_from(&shards[2]).unwrap();
        let mut right = shards[0].clone();
        right.merge_from(&bc).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn snapshot_merge_rejects_schema_mismatch() {
        let a = sample_snapshot(1, "a");
        let mut reg = Registry::new();
        reg.counter("other.name");
        let b = reg.snapshot(0);
        assert!(a.clone().merge_from(&b).is_err());
    }

    #[test]
    fn sink_writes_one_line_per_snapshot() {
        let mut sink = TelemetrySink::new(Vec::new());
        let a = sample_snapshot(1, "x");
        let b = sample_snapshot(2, "x");
        sink.write(&a);
        sink.write(&b);
        assert_eq!(sink.lines_written(), 2);
        let bytes = sink.finish().expect("no io error");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Snapshot::from_jsonl(lines[0]).unwrap(), a);
        assert_eq!(Snapshot::from_jsonl(lines[1]).unwrap(), b);
    }
}
