//! Overlay import/export.
//!
//! Plain-text edge lists (one `u32 u32` pair per line, `#` comments) and
//! Graphviz DOT output — enough to snapshot a simulated overlay for external
//! analysis or load a captured topology trace into the simulator.

use crate::graph::Graph;
use crate::node::NodeId;
use std::io::{self, BufRead, Write};

/// Writes the alive part of `graph` as an edge list: a `# nodes N` header,
/// one `a b` line per undirected edge (a < b), and one `n <id>` line per
/// isolated alive node so the population round-trips exactly.
pub fn write_edge_list<W: Write>(graph: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "# nodes {}", graph.alive_count())?;
    let mut isolated: Vec<NodeId> = Vec::new();
    for a in graph.alive_nodes() {
        if graph.degree(a) == 0 {
            isolated.push(a);
            continue;
        }
        for &b in graph.neighbors(a) {
            if a < b {
                writeln!(w, "{} {}", a.0, b.0)?;
            }
        }
    }
    for n in isolated {
        writeln!(w, "n {}", n.0)?;
    }
    Ok(())
}

/// Reads an edge list written by [`write_edge_list`] (or any `a b` pair
/// file). Node ids are compacted: the resulting graph has one slot per
/// *distinct id*, in first-appearance order, all alive.
pub fn read_edge_list<R: BufRead>(r: R) -> io::Result<Graph> {
    let mut graph = Graph::with_capacity(0);
    // File ids are dense (this is the format `write_edge_list` emits), so
    // the remap is a direct vector indexed by raw id — no hashing on the
    // load path. Raw ids are capped at the graph's own slot limit
    // (`MAX_SLOTS`): a file using larger labels could not produce a
    // loadable graph anyway, and the cap bounds the remap's memory against
    // corrupt or hostile inputs (the table is O(max id), not O(distinct)).
    let mut map: Vec<Option<NodeId>> = Vec::new();
    let mut intern = |raw: u32, graph: &mut Graph| -> io::Result<NodeId> {
        let i = raw as usize;
        if i >= crate::node::MAX_SLOTS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "node id {raw} exceeds the {} slot limit",
                    crate::node::MAX_SLOTS
                ),
            ));
        }
        if i >= map.len() {
            map.resize(i + 1, None);
        }
        Ok(*map[i].get_or_insert_with(|| graph.add_node()))
    };
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}: {line:?}", lineno + 1),
            )
        };
        if let Some(rest) = line.strip_prefix("n ") {
            let id: u32 = rest.trim().parse().map_err(|_| bad("bad node id"))?;
            intern(id, &mut graph)?;
            continue;
        }
        let mut parts = line.split_whitespace();
        let a: u32 = parts
            .next()
            .ok_or_else(|| bad("missing endpoint"))?
            .parse()
            .map_err(|_| bad("bad endpoint"))?;
        let b: u32 = parts
            .next()
            .ok_or_else(|| bad("missing endpoint"))?
            .parse()
            .map_err(|_| bad("bad endpoint"))?;
        if parts.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        let (na, nb) = (intern(a, &mut graph)?, intern(b, &mut graph)?);
        if na == nb {
            return Err(bad("self-loop"));
        }
        graph.add_edge(na, nb); // duplicate edges collapse silently
    }
    Ok(graph)
}

/// Writes the alive part of `graph` in Graphviz DOT format (undirected).
pub fn write_dot<W: Write>(graph: &Graph, w: &mut W, name: &str) -> io::Result<()> {
    writeln!(w, "graph {name} {{")?;
    for a in graph.alive_nodes() {
        if graph.degree(a) == 0 {
            writeln!(w, "  {};", a.0)?;
        }
        for &b in graph.neighbors(a) {
            if a < b {
                writeln!(w, "  {} -- {};", a.0, b.0)?;
            }
        }
    }
    writeln!(w, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, HeterogeneousRandom};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        read_edge_list(io::BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn edge_list_roundtrip_preserves_structure() {
        let mut rng = SmallRng::seed_from_u64(80);
        let g = HeterogeneousRandom::paper(500).build(&mut rng);
        let h = roundtrip(&g);
        h.check_invariants().unwrap();
        assert_eq!(h.alive_count(), g.alive_count());
        assert_eq!(h.edge_count(), g.edge_count());
        // Degree multiset must survive (ids are relabeled, structure is not).
        let degs = |x: &Graph| {
            let mut d: Vec<usize> = x.alive_nodes().map(|n| x.degree(n)).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degs(&g), degs(&h));
    }

    #[test]
    fn isolated_nodes_roundtrip() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        // nodes 2 and 3 isolated
        let h = roundtrip(&g);
        assert_eq!(h.alive_count(), 4);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn dead_nodes_are_not_exported() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.remove_node(NodeId(2));
        let h = roundtrip(&g);
        assert_eq!(h.alive_count(), 4);
        assert_eq!(h.edge_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\n0 1\n# another\n1 2\n";
        let g = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.alive_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in ["0", "0 x", "1 1", "0 1 2"] {
            let err = read_edge_list(io::BufReader::new(bad.as_bytes()));
            assert!(err.is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn oversized_ids_error_instead_of_exhausting_memory() {
        // A sparse/corrupt file with a huge raw label must be a clean
        // InvalidData error, not a multi-GiB remap table (or a slot-table
        // panic once the graph filled up).
        let text = format!("0 {}\n", u32::MAX);
        let err = read_edge_list(io::BufReader::new(text.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("slot limit"), "{err}");
    }

    #[test]
    fn dot_output_shape() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        let mut buf = Vec::new();
        write_dot(&g, &mut buf, "overlay").unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("graph overlay {"));
        assert!(s.contains("0 -- 1;"));
        assert!(s.contains("  2;"), "isolated node listed");
        assert!(s.trim_end().ends_with('}'));
    }
}
