//! Degree statistics and distributions.

use crate::graph::Graph;

/// Summary statistics over the alive nodes' degrees.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (= 2·E/N).
    pub mean: f64,
    /// Population standard deviation of the degree.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`] in one pass. Returns all-zero stats for an empty
/// overlay.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.alive_count();
    if n == 0 {
        return DegreeStats::default();
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    for node in g.alive_nodes() {
        let d = g.degree(node);
        min = min.min(d);
        max = max.max(d);
        sum += d as f64;
        sum_sq += (d * d) as f64;
    }
    let mean = sum / n as f64;
    let var = (sum_sq / n as f64 - mean * mean).max(0.0);
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Degree → node-count histogram, sorted by degree, zero counts omitted.
///
/// This is exactly the data behind Fig 7 ("Scale free degree distribution"):
/// the paper plots number of nodes per degree value on log-log axes.
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut counts: Vec<usize> = Vec::new();
    for node in g.alive_nodes() {
        let d = g.degree(node);
        if d >= counts.len() {
            counts.resize(d + 1, 0);
        }
        counts[d] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BarabasiAlbert, GraphBuilder, RingLattice};
    use crate::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn stats_on_regular_graph() {
        let mut rng = SmallRng::seed_from_u64(71);
        let g = RingLattice::new(50, 4).build(&mut rng);
        let s = degree_stats(&g);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(s.std_dev < 1e-9);
    }

    #[test]
    fn stats_empty_graph() {
        let g = Graph::with_capacity(0);
        assert_eq!(degree_stats(&g), DegreeStats::default());
        assert!(degree_histogram(&g).is_empty());
    }

    #[test]
    fn histogram_counts_sum_to_population() {
        let mut rng = SmallRng::seed_from_u64(72);
        let g = BarabasiAlbert::paper(3_000).build(&mut rng);
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.alive_count());
        // sorted by degree, no zero-count rows
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(hist.iter().all(|&(_, c)| c > 0));
    }

    #[test]
    fn histogram_simple_star() {
        let mut g = Graph::with_nodes(4);
        for i in 1..4u32 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        // degrees: hub 3, leaves 1,1,1
        assert_eq!(degree_histogram(&g), vec![(1, 3), (3, 1)]);
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max), (1, 3));
        assert!((s.mean - 1.5).abs() < 1e-12);
    }
}
