//! Connectivity queries: components, reachability, hop distances.

use crate::bitset::BitSet;
use crate::graph::Graph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Size of the connected component containing `start` (alive nodes only).
pub fn component_size(g: &Graph, start: NodeId) -> usize {
    if !g.is_alive(start) {
        return 0;
    }
    let mut visited = BitSet::with_capacity(g.num_slots());
    let mut queue = VecDeque::new();
    visited.insert(start.index());
    queue.push_back(start);
    let mut size = 0;
    while let Some(u) = queue.pop_front() {
        size += 1;
        for &w in g.neighbors(u) {
            if visited.insert(w.index()) {
                queue.push_back(w);
            }
        }
    }
    size
}

/// Whether the alive part of the overlay is a single connected component.
pub fn is_connected(g: &Graph) -> bool {
    match g.alive_nodes().next() {
        None => true,
        Some(start) => component_size(g, start) == g.alive_count(),
    }
}

/// Sizes of all connected components over alive nodes, largest first.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let mut visited = BitSet::with_capacity(g.num_slots());
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in g.alive_nodes() {
        if visited.get(start.index()) {
            continue;
        }
        visited.insert(start.index());
        queue.push_back(start);
        let mut size = 0;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &w in g.neighbors(u) {
                if visited.insert(w.index()) {
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Fraction of alive nodes inside the largest component (1.0 when connected,
/// 0.0 when empty).
pub fn largest_component_fraction(g: &Graph) -> f64 {
    let n = g.alive_count();
    if n == 0 {
        return 0.0;
    }
    component_sizes(g)[0] as f64 / n as f64
}

/// BFS hop distances from `source` to every alive node.
///
/// Returns a vector indexed by node slot; unreachable or dead nodes hold
/// `u32::MAX`. This is the *oracle* distance used by the paper's §V(o) check
/// ("by giving the accurate distance from the initiator to all nodes in the
/// overlay, the resulting size estimation was correct").
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_slots()];
    if !g.is_alive(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &w in g.neighbors(u) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, HeterogeneousRandom, RingLattice};
    use crate::churn;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_graph_components_and_distances() {
        let mut g = Graph::with_nodes(5);
        for i in 0..4u32 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        assert!(is_connected(&g));
        assert_eq!(component_size(&g, NodeId(0)), 5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(&d[..5], &[0, 1, 2, 3, 4]);

        g.remove_node(NodeId(2));
        assert!(!is_connected(&g));
        assert_eq!(component_sizes(&g), vec![2, 2]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[3], u32::MAX, "other side unreachable");
        assert_eq!(d[2], u32::MAX, "dead node unreachable");
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::with_capacity(0);
        assert!(is_connected(&g));
        assert_eq!(largest_component_fraction(&g), 0.0);
    }

    #[test]
    fn paper_overlay_is_connected_at_avg_7() {
        // §IV-A: average degree ≈7.2 over log10(N) keeps the graph connected.
        let mut rng = SmallRng::seed_from_u64(61);
        let g = HeterogeneousRandom::paper(5_000).build(&mut rng);
        assert!(is_connected(&g), "paper construction should be connected");
    }

    #[test]
    fn heavy_departures_fragment_overlay() {
        // The mechanism behind Fig 15/17: no-repair departures eventually
        // disconnect the overlay.
        let mut rng = SmallRng::seed_from_u64(62);
        let mut g = HeterogeneousRandom::paper(2_000).build(&mut rng);
        churn::remove_random_nodes(&mut g, 1_500, &mut rng);
        let frac = largest_component_fraction(&g);
        assert!(
            frac < 1.0,
            "75% departures should fragment the overlay (frac={frac})"
        );
    }

    #[test]
    fn ring_distance_is_hop_count() {
        let mut rng = SmallRng::seed_from_u64(63);
        let g = RingLattice::new(10, 2).build(&mut rng);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(&d[..10], &[0, 1, 2, 3, 4, 5, 4, 3, 2, 1]);
    }
}
