//! The mutable overlay graph.

use crate::bitset::BitSet;
use crate::node::NodeId;
use rand::Rng;

/// Per-slot window into the shared edge arena.
///
/// `arena[offset .. offset + len]` holds the slot's neighbor list;
/// `arena[offset .. offset + cap]` is the region reserved for it. Entries
/// between `len` and `cap` are uninitialized slack, never read.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    offset: u32,
    len: u32,
    cap: u32,
}

/// An undirected, unstructured peer-to-peer overlay.
///
/// Nodes are dense `u32` slots. Each slot is either *alive* (participating in
/// the overlay) or *dead* (departed/failed). Dead slots keep their id so
/// that samples and traces recorded before a departure stay meaningful, but
/// they have no links and cannot be sampled.
///
/// # Adjacency storage (CSR arena)
///
/// Neighbor lists live in one shared arena (`Vec<NodeId>`) addressed by a
/// per-slot span — `u32` offset/len/cap, 12 bytes per slot instead of a
/// 24-byte `Vec` header plus a private heap block each. Appending past a
/// span's capacity relocates that one region to the arena tail with ~1.5×
/// capacity (the overflow path for churn-time insertions); removals swap
/// with the region's last entry exactly like `Vec::swap_remove`. Abandoned
/// regions accumulate as garbage until the dead fraction crosses one half,
/// at which point [`compact_adjacency`](Self::compact_adjacency) rebuilds
/// the arena in slot order. The trigger is purely edge-count based — never
/// time- or address-based — and neither relocation nor compaction reorders
/// a neighbor list, so iteration order is bit-for-bit the order the historic
/// `Vec<Vec<NodeId>>` layout produced (property-tested against it).
///
/// # Slot reuse (bounded-memory churn)
///
/// By default the slot table is append-only: every arrival gets a fresh
/// slot, so a perpetually churning overlay grows without bound (and is
/// capped at [`MAX_SLOTS`](crate::node::MAX_SLOTS) cumulative arrivals).
/// [`enable_slot_reuse`](Self::enable_slot_reuse) switches departures to
/// feed a free list that later arrivals pop: memory becomes O(peak
/// population) regardless of churn volume. Each reuse increments the
/// slot's *generation*, minted into the new tenant's [`NodeId`], and
/// [`is_alive`](Self::is_alive) validates it — a stale id (a message in
/// flight to a departed node whose slot was since re-let) is dead, never
/// aliased to the new tenant. The default mode is bit-for-bit the historic
/// behavior; the reuse mode is what the million-node scales run on.
///
/// Links are bidirectional, as in the paper (§IV-A): "whenever a node contacts
/// another one, the reached node also has knowledge of communication
/// initiator's existence and keeps a link back to the contact node".
///
/// Complexity of the operations the estimation algorithms rely on:
///
/// * `neighbors` — O(1) slice access,
/// * `random_neighbor` — O(1),
/// * `random_alive` (uniform over alive nodes) — O(1),
/// * `remove_node` — O(degree²) worst case (degree · neighbor-list scan),
/// * `add_edge`/`remove_edge` — O(degree), amortizing the occasional
///   region relocation and arena compaction.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Per-slot neighbor-list windows into `arena`.
    spans: Vec<Span>,
    /// The shared edge arena all neighbor lists live in.
    arena: Vec<NodeId>,
    alive: BitSet,
    /// Dense list of alive node ids, for O(1) uniform sampling.
    alive_list: Vec<NodeId>,
    /// `alive_pos[i]` = position of node `i` in `alive_list`, or `u32::MAX`.
    alive_pos: Vec<u32>,
    /// Current generation of each slot (0 until first reuse).
    generation: Vec<u8>,
    /// Dead slots available for re-letting (populated only in reuse mode).
    free_slots: Vec<u32>,
    /// Whether departures feed `free_slots` and arrivals pop it.
    reuse_slots: bool,
    /// Number of undirected edges between alive nodes.
    edges: usize,
    /// Cumulative arrivals that re-let a freed slot (telemetry).
    slots_reused: u64,
    /// Cumulative arena compactions, automatic or forced (telemetry).
    compactions: u64,
}

const NOT_ALIVE: u32 = u32::MAX;

/// Arena entry used to fill uninitialized span slack; never read.
const ARENA_SLACK: NodeId = NodeId(u32::MAX);

/// Below this arena size compaction never fires: small graphs stay cheap
/// and the historic many-tiny-graph tests never pay a rebuild.
const COMPACT_FLOOR: usize = 4096;

impl Graph {
    /// Creates an empty graph with capacity reserved for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            spans: Vec::with_capacity(n),
            arena: Vec::new(),
            alive: BitSet::with_capacity(n),
            alive_list: Vec::with_capacity(n),
            alive_pos: Vec::with_capacity(n),
            generation: Vec::with_capacity(n),
            free_slots: Vec::new(),
            reuse_slots: false,
            edges: 0,
            slots_reused: 0,
            compactions: 0,
        }
    }

    /// Creates a graph with `n` alive, unconnected nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Graph::with_capacity(n);
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Switches the graph to bounded-memory churn: slots of nodes that
    /// depart *from now on* are re-let to later arrivals under a bumped
    /// generation (see the type-level docs). Ids minted before the switch
    /// stay valid; slots already dead at the switch are never re-let.
    pub fn enable_slot_reuse(&mut self) {
        self.reuse_slots = true;
    }

    /// Whether departures re-let their slots to later arrivals.
    pub fn slot_reuse(&self) -> bool {
        self.reuse_slots
    }

    /// Adds a new alive node with no links and returns its id. In reuse
    /// mode a freed slot is re-let (under a new generation) before the slot
    /// table grows.
    pub fn add_node(&mut self) -> NodeId {
        if let Some(slot) = self.free_slots.pop() {
            let slot = slot as usize;
            // Generations wrap at 256 reuses of one slot; an id would have
            // to outlive 255 intervening tenants to alias, which no
            // in-flight message or sample in this workspace approaches.
            let generation = self.generation[slot].wrapping_add(1);
            self.generation[slot] = generation;
            let id = NodeId::from_parts(slot, generation);
            debug_assert_eq!(self.spans[slot].len, 0, "re-let slot still wired");
            self.slots_reused += 1;
            self.alive.set(slot, true);
            self.alive_pos[slot] = self.alive_list.len() as u32;
            self.alive_list.push(id);
            return id;
        }
        assert!(
            self.spans.len() < crate::node::MAX_SLOTS,
            "slot table full ({} slots): enable_slot_reuse() bounds memory under churn",
            self.spans.len()
        );
        let id = NodeId::from_index(self.spans.len());
        self.spans.push(Span::default());
        self.alive.set(id.index(), true);
        self.alive_pos.push(self.alive_list.len() as u32);
        self.alive_list.push(id);
        self.generation.push(0);
        id
    }

    /// Total number of node slots ever allocated (alive + dead).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.spans.len()
    }

    /// Number of alive nodes — the ground-truth "system size" the estimation
    /// algorithms are trying to discover.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_list.len()
    }

    /// Number of undirected edges between alive nodes.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Bytes currently held by the adjacency storage (span table + arena,
    /// including arena garbage awaiting compaction). Instrumentation for
    /// the `engine-memory` ablation; excludes alive/generation bookkeeping.
    pub fn adjacency_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<Span>()
            + self.arena.len() * std::mem::size_of::<NodeId>()
    }

    /// Cumulative arrivals that re-let a freed slot (telemetry; nonzero
    /// only after [`enable_slot_reuse`](Self::enable_slot_reuse)).
    pub fn slots_reused(&self) -> u64 {
        self.slots_reused
    }

    /// Cumulative arena compactions, automatic or forced (telemetry).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether `node` is currently alive. Generation-checked: an id whose
    /// slot has since been re-let to a newer tenant is dead, even though
    /// the slot itself is occupied.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index())
            && self
                .generation
                .get(node.index())
                .is_some_and(|&g| g == node.generation())
    }

    /// The neighbor view of `node`: a contiguous slice into the shared
    /// arena. Empty for dead nodes.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let span = self.spans[node.index()];
        &self.arena[span.offset as usize..(span.offset + span.len) as usize]
    }

    /// Degree of `node` (0 for dead nodes).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.spans[node.index()].len as usize
    }

    /// Iterates over all alive node ids (in sampling-list order, which is
    /// arbitrary but deterministic).
    #[inline]
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive_list.iter().copied()
    }

    /// Slice of all alive node ids.
    #[inline]
    pub fn alive_slice(&self) -> &[NodeId] {
        &self.alive_list
    }

    /// Draws an alive node uniformly at random in O(1).
    ///
    /// This is the *oracle* sampler: real deployments cannot do this (that is
    /// the whole point of the paper), but the simulator uses it to pick churn
    /// victims, estimation initiators, and to validate the random-walk
    /// sampler's uniformity.
    ///
    /// Returns `None` when the overlay is empty.
    pub fn random_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.alive_list.is_empty() {
            None
        } else {
            Some(self.alive_list[rng.gen_range(0..self.alive_list.len())])
        }
    }

    /// Draws a uniform random neighbor of `node` in O(1), or `None` if the
    /// node is isolated.
    pub fn random_neighbor<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        let nb = self.neighbors(node);
        if nb.is_empty() {
            None
        } else {
            Some(nb[rng.gen_range(0..nb.len())])
        }
    }

    /// Returns whether `a` and `b` are directly linked.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        let (fst, snd) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(fst).contains(&snd)
    }

    /// Adds the undirected edge `a — b`.
    ///
    /// Returns `false` (and does nothing) on self-loops, duplicate edges, or
    /// if either endpoint is dead.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.is_alive(a) || !self.is_alive(b) || self.has_edge(a, b) {
            return false;
        }
        self.push_neighbor(a.index(), b);
        self.push_neighbor(b.index(), a);
        self.edges += 1;
        self.maybe_compact();
        true
    }

    /// Removes the undirected edge `a — b`. Returns `false` if absent.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.remove_from_slot(a.index(), b) {
            return false;
        }
        let removed = self.remove_from_slot(b.index(), a);
        debug_assert!(removed, "adjacency lists out of sync");
        self.edges -= 1;
        self.maybe_compact();
        true
    }

    /// Appends `id` to `slot`'s neighbor region, relocating the region to
    /// the arena tail with grown capacity when full (the overflow path).
    /// Relocation copies the list front-to-back: iteration order is exactly
    /// what `Vec::push` produced.
    fn push_neighbor(&mut self, slot: usize, id: NodeId) {
        let span = self.spans[slot];
        if span.len < span.cap {
            self.arena[(span.offset + span.len) as usize] = id;
            self.spans[slot].len += 1;
            return;
        }
        // Region full: relocate to the tail with ~1.5× capacity. The old
        // region becomes arena garbage reclaimed by the next compaction.
        let new_cap = span.len + (span.len >> 1) + 2;
        let new_off = self.arena.len();
        assert!(
            new_off + new_cap as usize <= u32::MAX as usize,
            "edge arena exceeds u32 addressing"
        );
        self.arena
            .extend_from_within(span.offset as usize..(span.offset + span.len) as usize);
        self.arena.resize(new_off + new_cap as usize, ARENA_SLACK);
        self.arena[new_off + span.len as usize] = id;
        self.spans[slot] = Span {
            offset: new_off as u32,
            len: span.len + 1,
            cap: new_cap,
        };
    }

    /// Removes `target` from `slot`'s neighbor region with the positional
    /// swap-with-last that `Vec::swap_remove` performs — bit-identical
    /// resulting order.
    #[inline]
    fn remove_from_slot(&mut self, slot: usize, target: NodeId) -> bool {
        let span = self.spans[slot];
        let off = span.offset as usize;
        let list = &mut self.arena[off..off + span.len as usize];
        match list.iter().position(|&x| x == target) {
            Some(pos) => {
                list.swap(pos, span.len as usize - 1);
                self.spans[slot].len -= 1;
                true
            }
            None => false,
        }
    }

    /// Releases `slot`'s whole neighbor region to arena garbage.
    fn release_region(&mut self, slot: usize) {
        self.spans[slot] = Span::default();
    }

    /// Number of arena entries holding live neighbor-list data. Everything
    /// else (abandoned regions, in-region slack) is garbage.
    #[inline]
    fn arena_live(&self) -> usize {
        2 * self.edges
    }

    /// Rebuilds the arena when garbage outweighs live data. Deterministic:
    /// the trigger depends only on edge/arena counts, and the rebuild is
    /// order-preserving, so it is invisible to every observable API.
    fn maybe_compact(&mut self) {
        let live = self.arena_live();
        if self.arena.len() >= COMPACT_FLOOR && self.arena.len() - live > live {
            self.compact_adjacency();
        }
    }

    /// Rebuilds the edge arena in slot order with exact-fit regions,
    /// dropping all garbage. Neighbor-list contents and iteration order are
    /// unchanged; only arena addresses move. O(V + E). Normally triggered
    /// automatically; public so bulk loads and tests can force it.
    pub fn compact_adjacency(&mut self) {
        self.compactions += 1;
        let mut new_arena = Vec::with_capacity(self.arena_live());
        for span in self.spans.iter_mut() {
            let off = new_arena.len() as u32;
            new_arena.extend_from_slice(
                &self.arena[span.offset as usize..(span.offset + span.len) as usize],
            );
            span.offset = off;
            span.cap = span.len;
        }
        self.arena = new_arena;
    }

    /// Removes `node` from the overlay: all its links disappear and surviving
    /// neighbors do **not** re-wire (the paper's no-repair churn semantics,
    /// §IV-A: "the nodes that have lost one or several neighbors do not create
    /// new links with other nodes").
    ///
    /// Returns the node's former neighbors, or `None` if it was already dead.
    ///
    /// The returned `Vec` is a fresh allocation handed to the caller; on
    /// churn hot paths that remove many nodes and discard the neighbor
    /// lists, prefer [`remove_node_with`](Self::remove_node_with), which
    /// reuses one caller-owned scratch buffer instead of allocating and
    /// freeing per removal.
    pub fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_alive(node) {
            return None;
        }
        let neighbors = self.neighbors(node).to_vec();
        self.release_region(node.index());
        self.detach_links(node, &neighbors);
        self.mark_dead(node);
        self.maybe_compact();
        Some(neighbors)
    }

    /// [`remove_node`](Self::remove_node) without the per-removal
    /// allocation: the victim's neighbor list is copied into `scratch`
    /// (cleared first) and its arena region is released (dead slots never
    /// re-wire, so it is garbage from then on).
    ///
    /// Returns `false` (leaving `scratch` untouched) if `node` was already
    /// dead; on `true`, `scratch` holds the former neighbors.
    pub fn remove_node_with(&mut self, node: NodeId, scratch: &mut Vec<NodeId>) -> bool {
        if !self.is_alive(node) {
            return false;
        }
        scratch.clear();
        scratch.extend_from_slice(self.neighbors(node));
        self.release_region(node.index());
        self.detach_links(node, scratch);
        self.mark_dead(node);
        self.maybe_compact();
        true
    }

    /// Removes the backlinks of `node`'s former `neighbors` and updates the
    /// edge counter.
    fn detach_links(&mut self, node: NodeId, neighbors: &[NodeId]) {
        for &w in neighbors {
            let removed = self.remove_from_slot(w.index(), node);
            debug_assert!(removed, "adjacency lists out of sync");
        }
        self.edges -= neighbors.len();
    }

    /// Marks an alive, already-detached `node` dead in the alive bookkeeping.
    fn mark_dead(&mut self, node: NodeId) {
        self.alive.set(node.index(), false);
        // O(1) removal from the dense alive list via swap-remove.
        let pos = self.alive_pos[node.index()];
        debug_assert_ne!(pos, NOT_ALIVE);
        let last = *self
            .alive_list
            .last()
            .expect("alive node implies non-empty list");
        self.alive_list.swap_remove(pos as usize);
        if last != node {
            self.alive_pos[last.index()] = pos;
        }
        self.alive_pos[node.index()] = NOT_ALIVE;
        if self.reuse_slots {
            self.free_slots.push(node.index() as u32);
        }
    }

    /// Checks internal invariants. Used by tests and debug assertions; O(V+E).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.alive_list.len() != self.alive.count_ones() {
            return Err(format!(
                "alive list/bitset mismatch: {} vs {}",
                self.alive_list.len(),
                self.alive.count_ones()
            ));
        }
        if self.generation.len() != self.spans.len() {
            return Err(format!(
                "generation table covers {} of {} slots",
                self.generation.len(),
                self.spans.len()
            ));
        }
        for (pos, &n) in self.alive_list.iter().enumerate() {
            if self.alive_pos[n.index()] as usize != pos {
                return Err(format!(
                    "alive_pos[{n:?}] does not point back to list slot {pos}"
                ));
            }
            if !self.alive.get(n.index()) {
                return Err(format!("{n:?} in alive list but bit unset"));
            }
            if self.generation[n.index()] != n.generation() {
                return Err(format!(
                    "{n:?} in alive list under stale generation (slot is at {})",
                    self.generation[n.index()]
                ));
            }
        }
        for &slot in &self.free_slots {
            if self.alive.get(slot as usize) {
                return Err(format!("slot {slot} both free and alive"));
            }
        }
        // CSR structure: every span in bounds, regions pairwise disjoint.
        let mut regions: Vec<(u32, u32)> = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            if span.len > span.cap {
                return Err(format!(
                    "slot {i}: len {} exceeds cap {}",
                    span.len, span.cap
                ));
            }
            if span.offset as usize + span.cap as usize > self.arena.len() {
                return Err(format!(
                    "slot {i}: region [{}, +{}) outside arena of {}",
                    span.offset,
                    span.cap,
                    self.arena.len()
                ));
            }
            if span.cap > 0 {
                regions.push((span.offset, span.cap));
            }
        }
        regions.sort_unstable();
        for w in regions.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(format!(
                    "overlapping arena regions at {} (+{}) and {}",
                    w[0].0, w[0].1, w[1].0
                ));
            }
        }
        let mut half_edges = 0usize;
        for i in 0..self.spans.len() {
            // The slot's *current* tenant id: backlinks are stored under it.
            let id = NodeId::from_parts(i, self.generation[i]);
            let nb = self.neighbors(id);
            if !self.alive.get(i) && !nb.is_empty() {
                return Err(format!("dead node {id:?} still has links"));
            }
            for &w in nb {
                if !self.is_alive(w) {
                    return Err(format!("{id:?} links to dead (or stale-id) node {w:?}"));
                }
                if w == id {
                    return Err(format!("self-loop at {id:?}"));
                }
                if !self.neighbors(w).contains(&id) {
                    return Err(format!("asymmetric edge {id:?} -> {w:?}"));
                }
            }
            let mut sorted: Vec<NodeId> = nb.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != nb.len() {
                return Err(format!("duplicate links at {id:?}"));
            }
            half_edges += nb.len();
        }
        if half_edges != 2 * self.edges {
            return Err(format!(
                "edge counter mismatch: counted {} half-edges, stored {} edges",
                half_edges, self.edges
            ));
        }
        Ok(())
    }
}

/// The pre-CSR `Vec<Vec<NodeId>>` graph, retained verbatim as the
/// determinism oracle: the CSR layout must reproduce its neighbor
/// iteration order bit for bit under any operation interleaving.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    #[derive(Clone, Debug)]
    pub struct VecGraph {
        adj: Vec<Vec<NodeId>>,
        alive: BitSet,
        alive_list: Vec<NodeId>,
        alive_pos: Vec<u32>,
        generation: Vec<u8>,
        free_slots: Vec<u32>,
        reuse_slots: bool,
        edges: usize,
    }

    impl VecGraph {
        pub fn with_nodes(n: usize) -> Self {
            let mut g = VecGraph {
                adj: Vec::with_capacity(n),
                alive: BitSet::with_capacity(n),
                alive_list: Vec::with_capacity(n),
                alive_pos: Vec::with_capacity(n),
                generation: Vec::with_capacity(n),
                free_slots: Vec::new(),
                reuse_slots: false,
                edges: 0,
            };
            for _ in 0..n {
                g.add_node();
            }
            g
        }

        pub fn enable_slot_reuse(&mut self) {
            self.reuse_slots = true;
        }

        pub fn add_node(&mut self) -> NodeId {
            if let Some(slot) = self.free_slots.pop() {
                let slot = slot as usize;
                let generation = self.generation[slot].wrapping_add(1);
                self.generation[slot] = generation;
                let id = NodeId::from_parts(slot, generation);
                self.alive.set(slot, true);
                self.alive_pos[slot] = self.alive_list.len() as u32;
                self.alive_list.push(id);
                return id;
            }
            let id = NodeId::from_index(self.adj.len());
            self.adj.push(Vec::new());
            self.alive.set(id.index(), true);
            self.alive_pos.push(self.alive_list.len() as u32);
            self.alive_list.push(id);
            self.generation.push(0);
            id
        }

        pub fn num_slots(&self) -> usize {
            self.adj.len()
        }

        pub fn alive_count(&self) -> usize {
            self.alive_list.len()
        }

        pub fn edge_count(&self) -> usize {
            self.edges
        }

        pub fn alive_slice(&self) -> &[NodeId] {
            &self.alive_list
        }

        pub fn is_alive(&self, node: NodeId) -> bool {
            self.alive.get(node.index())
                && self
                    .generation
                    .get(node.index())
                    .is_some_and(|&g| g == node.generation())
        }

        pub fn neighbors_of_slot(&self, slot: usize) -> &[NodeId] {
            &self.adj[slot]
        }

        pub fn degree(&self, node: NodeId) -> usize {
            self.adj[node.index()].len()
        }

        pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
            let (fst, snd) = if self.degree(a) <= self.degree(b) {
                (a, b)
            } else {
                (b, a)
            };
            self.adj[fst.index()].contains(&snd)
        }

        pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
            if a == b || !self.is_alive(a) || !self.is_alive(b) || self.has_edge(a, b) {
                return false;
            }
            self.adj[a.index()].push(b);
            self.adj[b.index()].push(a);
            self.edges += 1;
            true
        }

        pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
            if !Self::remove_from_list(&mut self.adj[a.index()], b) {
                return false;
            }
            let removed = Self::remove_from_list(&mut self.adj[b.index()], a);
            debug_assert!(removed);
            self.edges -= 1;
            true
        }

        fn remove_from_list(list: &mut Vec<NodeId>, target: NodeId) -> bool {
            match list.iter().position(|&x| x == target) {
                Some(pos) => {
                    list.swap_remove(pos);
                    true
                }
                None => false,
            }
        }

        pub fn remove_node(&mut self, node: NodeId) -> Option<Vec<NodeId>> {
            if !self.is_alive(node) {
                return None;
            }
            let neighbors = std::mem::take(&mut self.adj[node.index()]);
            for &w in &neighbors {
                let removed = Self::remove_from_list(&mut self.adj[w.index()], node);
                debug_assert!(removed);
            }
            self.edges -= neighbors.len();
            self.alive.set(node.index(), false);
            let pos = self.alive_pos[node.index()];
            let last = *self.alive_list.last().unwrap();
            self.alive_list.swap_remove(pos as usize);
            if last != node {
                self.alive_pos[last.index()] = pos;
            }
            self.alive_pos[node.index()] = NOT_ALIVE;
            if self.reuse_slots {
                self.free_slots.push(node.index() as u32);
            }
            Some(neighbors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::with_nodes(3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        (g, a, b, c)
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.alive_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(c, a));
        assert_eq!(g.degree(a), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId(0), NodeId(1));
        assert!(!g.add_edge(a, a));
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b));
        assert!(!g.add_edge(b, a));
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_edge_works_both_directions() {
        let (mut g, a, b, _) = triangle();
        assert!(g.remove_edge(b, a));
        assert!(!g.has_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_node_detaches_and_reports_neighbors() {
        let (mut g, a, b, c) = triangle();
        let mut nbs = g.remove_node(b).unwrap();
        nbs.sort_unstable();
        assert_eq!(nbs, vec![a, c]);
        assert!(!g.is_alive(b));
        assert_eq!(g.alive_count(), 2);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_node(b).is_none(), "double removal must be a no-op");
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_node_with_matches_remove_node() {
        let build = || {
            let mut g = Graph::with_nodes(30);
            for i in 0..30u32 {
                g.add_edge(NodeId(i), NodeId((i + 1) % 30));
                g.add_edge(NodeId(i), NodeId((i + 7) % 30));
            }
            g
        };
        let mut a = build();
        let mut b = build();
        let mut scratch = Vec::new();
        for i in [3u32, 17, 3, 29, 0] {
            let via_vec = a.remove_node(NodeId(i));
            let ok = b.remove_node_with(NodeId(i), &mut scratch);
            match via_vec {
                Some(nbs) => {
                    assert!(ok);
                    assert_eq!(scratch, nbs, "neighbor lists must agree");
                }
                None => assert!(!ok, "double removal must be a no-op"),
            }
            assert_eq!(a.alive_count(), b.alive_count());
            assert_eq!(a.edge_count(), b.edge_count());
        }
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn remove_node_with_keeps_scratch_on_dead_node() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        let mut scratch = Vec::new();
        assert!(g.remove_node_with(NodeId(0), &mut scratch));
        assert_eq!(scratch, vec![NodeId(1)]);
        // Second removal: no-op, scratch untouched (still the old contents).
        assert!(!g.remove_node_with(NodeId(0), &mut scratch));
        assert_eq!(scratch, vec![NodeId(1)]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn edges_to_dead_nodes_are_rejected() {
        let (mut g, a, b, _) = triangle();
        g.remove_node(b);
        assert!(!g.add_edge(a, b));
        g.check_invariants().unwrap();
    }

    #[test]
    fn random_alive_is_uniform_over_alive_nodes() {
        let mut g = Graph::with_nodes(10);
        for i in 0..5 {
            g.remove_node(NodeId(i * 2)); // kill even nodes
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            let n = g.random_alive(&mut rng).unwrap();
            assert!(g.is_alive(n));
            counts[n.index()] += 1;
        }
        for i in (1..10).step_by(2) {
            // each odd node should get ~10_000 draws; allow generous slack
            assert!(
                counts[i] > 8_500 && counts[i] < 11_500,
                "counts = {counts:?}"
            );
        }
    }

    #[test]
    fn random_neighbor_respects_view() {
        let (g, a, b, c) = triangle();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let n = g.random_neighbor(a, &mut rng).unwrap();
            assert!(n == b || n == c);
        }
    }

    #[test]
    fn empty_and_isolated_cases() {
        let g = Graph::with_capacity(0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(g.random_alive(&mut rng).is_none());

        let mut g = Graph::with_nodes(1);
        assert!(g.random_neighbor(NodeId(0), &mut rng).is_none());
        assert_eq!(g.remove_node(NodeId(0)), Some(vec![]));
        assert_eq!(g.alive_count(), 0);
    }

    #[test]
    fn slot_reuse_relets_dead_slots_under_new_generations() {
        let mut g = Graph::with_nodes(4);
        g.enable_slot_reuse();
        g.add_edge(NodeId(0), NodeId(1));
        let departed = NodeId(1);
        g.remove_node(departed);
        assert_eq!(g.num_slots(), 4);

        // The arrival re-lets slot 1 under generation 1.
        let tenant = g.add_node();
        assert_eq!(g.num_slots(), 4, "no slot-table growth");
        assert_eq!(tenant.index(), 1);
        assert_eq!(tenant.generation(), 1);
        assert_ne!(tenant, departed);

        // The old id stays dead; the new one is alive and wireable.
        assert!(!g.is_alive(departed), "stale id must not alias the tenant");
        assert!(g.is_alive(tenant));
        assert!(g.add_edge(NodeId(0), tenant));
        assert!(!g.add_edge(NodeId(0), departed), "stale ids cannot wire");
        g.check_invariants().unwrap();
    }

    #[test]
    fn slot_reuse_bounds_the_slot_table_under_churn() {
        let mut g = Graph::with_nodes(50);
        g.enable_slot_reuse();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut graveyard: Vec<NodeId> = Vec::new();
        for _ in 0..40 {
            // A full join/leave cycle of 20 nodes each.
            for _ in 0..20 {
                let victim = g.random_alive(&mut rng).unwrap();
                g.remove_node(victim);
                graveyard.push(victim);
            }
            for _ in 0..20 {
                let n = g.add_node();
                // add_edge ignores dead endpoints, so wire best-effort.
                if let Some(p) = g.random_alive(&mut rng) {
                    g.add_edge(n, p);
                }
            }
        }
        assert_eq!(g.alive_count(), 50);
        assert_eq!(g.num_slots(), 50, "memory bounded by peak population");
        // Every id that ever departed is still dead — no aliasing ever.
        for &ghost in &graveyard {
            assert!(!g.is_alive(ghost), "{ghost:?} rose from the dead");
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn append_only_mode_is_unchanged() {
        // The default graph never reuses: ids are dense indices, gen 0.
        let mut g = Graph::with_nodes(3);
        g.remove_node(NodeId(1));
        let n = g.add_node();
        assert_eq!(n, NodeId(3), "append-only arrival takes a fresh slot");
        assert_eq!(n.generation(), 0);
        assert_eq!(g.num_slots(), 4);
        assert!(!g.slot_reuse());
        g.check_invariants().unwrap();
    }

    #[test]
    fn alive_list_swap_remove_bookkeeping() {
        let mut g = Graph::with_nodes(100);
        // Remove in a scattered order, then verify every survivor samples fine.
        for i in [0u32, 99, 50, 1, 98, 51, 2] {
            g.remove_node(NodeId(i));
        }
        g.check_invariants().unwrap();
        assert_eq!(g.alive_count(), 93);
        let alive: Vec<NodeId> = g.alive_nodes().collect();
        assert_eq!(alive.len(), 93);
        for n in alive {
            assert!(g.is_alive(n));
        }
    }

    // ── CSR vs the Vec-of-Vecs oracle ───────────────────────────────────

    /// Applies one identical operation stream to the CSR graph and the
    /// retained historic implementation and asserts every observable —
    /// return values, alive-list order, and per-slot neighbor *iteration
    /// order* — stays bit-identical throughout.
    #[test]
    fn csr_matches_vec_oracle_under_churn_storms() {
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut csr = Graph::with_nodes(48);
            let mut old = oracle::VecGraph::with_nodes(48);
            if seed % 2 == 0 {
                csr.enable_slot_reuse();
                old.enable_slot_reuse();
            }
            for step in 0..800 {
                match rng.gen_range(0..10u32) {
                    // Wire a random pair (often a duplicate or self edge).
                    0..=4 => {
                        let a = csr.random_alive(&mut rng);
                        let b = csr.random_alive(&mut rng);
                        if let (Some(a), Some(b)) = (a, b) {
                            assert_eq!(csr.add_edge(a, b), old.add_edge(a, b));
                        }
                    }
                    // Unwire an existing link.
                    5..=6 => {
                        if let Some(a) = csr.random_alive(&mut rng) {
                            if let Some(b) = csr.random_neighbor(a, &mut rng) {
                                assert_eq!(csr.remove_edge(a, b), old.remove_edge(a, b));
                            }
                        }
                    }
                    // Depart.
                    7..=8 => {
                        if let Some(v) = csr.random_alive(&mut rng) {
                            assert_eq!(csr.remove_node(v), old.remove_node(v));
                        }
                    }
                    // Join and wire to up to 3 peers.
                    _ => {
                        let a = csr.add_node();
                        assert_eq!(a, old.add_node(), "arrival ids diverged");
                        for _ in 0..3 {
                            if let Some(p) = csr.random_alive(&mut rng) {
                                assert_eq!(csr.add_edge(a, p), old.add_edge(a, p));
                            }
                        }
                    }
                }
                // A mid-storm forced compaction must be invisible.
                if step % 97 == 0 {
                    csr.compact_adjacency();
                }
                assert_eq!(csr.num_slots(), old.num_slots());
                assert_eq!(csr.alive_count(), old.alive_count());
                assert_eq!(csr.edge_count(), old.edge_count());
                assert_eq!(csr.alive_slice(), old.alive_slice());
                for slot in 0..csr.num_slots() {
                    assert_eq!(
                        csr.neighbors(NodeId::from_index(slot)),
                        old.neighbors_of_slot(slot),
                        "slot {slot} neighbor order diverged (seed {seed}, step {step})"
                    );
                }
            }
            csr.check_invariants().unwrap();
        }
    }

    #[test]
    fn compaction_is_invisible_and_reclaims_garbage() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut g = Graph::with_nodes(200);
        g.enable_slot_reuse();
        // Churn hard enough to force relocations and automatic compactions.
        for _ in 0..50 {
            for _ in 0..40 {
                if let (Some(a), Some(b)) = (g.random_alive(&mut rng), g.random_alive(&mut rng)) {
                    g.add_edge(a, b);
                }
            }
            for _ in 0..20 {
                if let Some(v) = g.random_alive(&mut rng) {
                    g.remove_node(v);
                }
            }
            for _ in 0..20 {
                let n = g.add_node();
                if let Some(p) = g.random_alive(&mut rng) {
                    g.add_edge(n, p);
                }
            }
            g.check_invariants().unwrap();
        }
        // Forcing a rebuild changes no neighbor list and leaves zero garbage.
        let before: Vec<Vec<NodeId>> = (0..g.num_slots())
            .map(|s| g.neighbors(NodeId::from_index(s)).to_vec())
            .collect();
        let bytes_before = g.adjacency_bytes();
        g.compact_adjacency();
        for (s, want) in before.iter().enumerate() {
            assert_eq!(g.neighbors(NodeId::from_index(s)), &want[..]);
        }
        assert!(g.adjacency_bytes() <= bytes_before);
        g.check_invariants().unwrap();
        // After an exact-fit rebuild the arena holds only live entries.
        assert_eq!(
            g.adjacency_bytes(),
            g.num_slots() * 12 + 2 * g.edge_count() * 4
        );
    }

    #[test]
    fn overflow_path_grows_one_hub_without_disturbing_others() {
        // One hub accumulates degree far past any initial capacity while
        // spokes stay tiny: exercises repeated region relocation.
        let n = 600;
        let mut g = Graph::with_nodes(n);
        let hub = NodeId(0);
        for i in 1..n as u32 {
            assert!(g.add_edge(hub, NodeId(i)));
        }
        assert_eq!(g.degree(hub), n - 1);
        // Push order preserved: neighbors are exactly 1..n in order.
        let want: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        assert_eq!(g.neighbors(hub), &want[..]);
        g.check_invariants().unwrap();
    }
}
