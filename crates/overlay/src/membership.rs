//! A gossip-based peer-sampling (membership) service.
//!
//! The study's algorithms assume each peer can contact "a set of random
//! neighbors"; the paper points to gossip-based membership protocols —
//! Jelasity et al.'s peer sampling service \[8\]\[10\] and CYCLON \[19\] —
//! as the substrate that provides them in practice, and HopsSampling's
//! source papers run their gossip over exactly such a service.
//!
//! [`PeerSamplingService`] is a compact shuffle protocol of that class:
//! every node keeps a small partial view of peer addresses; each round it
//! exchanges a random half of its view (plus its own address) with a random
//! view member, both sides merging what they received. Views converge to
//! approximately uniform samples of the alive population, which is what
//! lets the simulator's *oracle* uniform sampling stand in for the service
//! in the main experiments — `service_approaches_oracle_uniformity`
//! validates that substitution.

use crate::graph::Graph;
use crate::node::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Flat-buffer filler for entries past a view's live length; never read.
const VIEW_SLACK: NodeId = NodeId(u32::MAX);

/// A simulated gossip membership service over the overlay's node slots.
///
/// Views are degree-bounded by construction (≤ `view_size` entries each),
/// so they live in one flat buffer with a fixed stride of `view_size`
/// entries per slot plus a `u32` length — 4 bytes of bookkeeping per node
/// instead of a 24-byte `Vec` header and a private heap block each. Entry
/// order within a view, and therefore every RNG draw the shuffle protocol
/// makes, is bit-for-bit what the historic `Vec<Vec<NodeId>>` layout
/// produced.
///
/// Generation-aware: on a slot-reusing overlay
/// ([`Graph::enable_slot_reuse`]) a re-let slot's new tenant gets a fresh
/// view seeded from its own overlay neighbors at its first shuffle round —
/// it never inherits the departed tenant's entries. (An exchange *into* a
/// not-yet-reset slot within the same round is simply lost when the reset
/// happens — ordinary gossip lossiness.)
#[derive(Clone, Debug)]
pub struct PeerSamplingService {
    /// All views, `view_size` entries per slot; `views[slot * view_size ..]`
    /// holds slot's view, live up to `view_lens[slot]`.
    views: Vec<NodeId>,
    /// Live entry count per slot (≤ `view_size`).
    view_lens: Vec<u32>,
    /// Generation whose tenant each slot's view belongs to.
    view_gens: Vec<u8>,
    view_size: usize,
    shuffle_len: usize,
    rounds: u64,
}

impl PeerSamplingService {
    /// Bootstraps every alive node's view from its overlay neighbors, topped
    /// up with uniform random peers — the realistic join state (a node knows
    /// its contacts, not the whole network).
    ///
    /// `view_size` must be ≥ 2; `shuffle_len` (entries exchanged per round)
    /// is capped at `view_size`.
    pub fn bootstrap(
        graph: &Graph,
        view_size: usize,
        shuffle_len: usize,
        rng: &mut SmallRng,
    ) -> Self {
        assert!(view_size >= 2, "view size must be at least 2");
        let shuffle_len = shuffle_len.clamp(1, view_size);
        let mut svc = PeerSamplingService {
            views: vec![VIEW_SLACK; graph.num_slots() * view_size],
            view_lens: vec![0; graph.num_slots()],
            view_gens: vec![0u8; graph.num_slots()],
            view_size,
            shuffle_len,
            rounds: 0,
        };
        for node in graph.alive_nodes() {
            let slot = node.index();
            svc.view_gens[slot] = node.generation();
            for &nb in graph.neighbors(node) {
                if svc.view_lens[slot] as usize == view_size {
                    break;
                }
                if nb != node && !svc.view_slice(slot).contains(&nb) {
                    svc.push_entry(slot, nb);
                }
            }
            while (svc.view_lens[slot] as usize) < view_size {
                match graph.random_alive(rng) {
                    Some(p) if p != node && !svc.view_slice(slot).contains(&p) => {
                        svc.push_entry(slot, p)
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
        }
        svc
    }

    /// Completed shuffle rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The live view of `slot` as a slice of the flat buffer.
    #[inline]
    fn view_slice(&self, slot: usize) -> &[NodeId] {
        let off = slot * self.view_size;
        &self.views[off..off + self.view_lens[slot] as usize]
    }

    /// Appends `p` to `slot`'s view (caller guarantees room).
    #[inline]
    fn push_entry(&mut self, slot: usize, p: NodeId) {
        let len = self.view_lens[slot] as usize;
        debug_assert!(len < self.view_size);
        self.views[slot * self.view_size + len] = p;
        self.view_lens[slot] = (len + 1) as u32;
    }

    /// `Vec::swap_remove` on `slot`'s view — bit-identical resulting order.
    #[inline]
    fn swap_remove_entry(&mut self, slot: usize, idx: usize) {
        let off = slot * self.view_size;
        let len = self.view_lens[slot] as usize;
        self.views.swap(off + idx, off + len - 1);
        self.view_lens[slot] = (len - 1) as u32;
    }

    /// The current partial view of `node`.
    pub fn view(&self, node: NodeId) -> &[NodeId] {
        self.view_slice(node.index())
    }

    /// Draws a peer uniformly from `node`'s view (`None` for an empty view).
    pub fn sample(&self, node: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        let view = self.view_slice(node.index());
        if view.is_empty() {
            None
        } else {
            Some(view[rng.gen_range(0..view.len())])
        }
    }

    /// Admits overlay nodes that joined after bootstrap: allocates their
    /// view slot and seeds it from their overlay neighbors (the contacts a
    /// joining node actually knows).
    fn admit_new_nodes(&mut self, graph: &Graph) {
        if self.view_lens.len() >= graph.num_slots() {
            return;
        }
        let first_new = self.view_lens.len();
        self.views
            .resize(graph.num_slots() * self.view_size, VIEW_SLACK);
        self.view_lens.resize(graph.num_slots(), 0);
        self.view_gens.resize(graph.num_slots(), 0);
        for slot in first_new..graph.num_slots() {
            let node = NodeId::from_index(slot);
            if !graph.is_alive(node) {
                continue;
            }
            for &nb in graph.neighbors(node).iter().take(self.view_size) {
                self.push_entry(slot, nb);
            }
        }
    }

    /// Detects that `node` re-let its slot since the view was built (its
    /// generation moved on) and, if so, replaces the departed tenant's
    /// leftover view with a fresh one seeded from `node`'s own overlay
    /// neighbors — the same join state [`bootstrap`](Self::bootstrap) and
    /// [`admit_new_nodes`](Self::admit_new_nodes) give first tenants.
    fn reseed_if_relet(&mut self, node: NodeId, graph: &Graph) {
        let slot = node.index();
        if self.view_gens[slot] == node.generation() {
            return;
        }
        self.view_gens[slot] = node.generation();
        self.view_lens[slot] = 0;
        for &nb in graph.neighbors(node).iter().take(self.view_size) {
            self.push_entry(slot, nb);
        }
    }

    /// One synchronous shuffle round: every alive node picks a random alive
    /// view member and the pair swaps `shuffle_len` random entries (each
    /// sender injecting its own address). Dead view entries encountered as
    /// partners are dropped — the protocol's self-healing property; nodes
    /// that joined the overlay since the last round are admitted first.
    pub fn shuffle_round(&mut self, graph: &Graph, rng: &mut SmallRng) {
        self.admit_new_nodes(graph);
        let mut to_partner: Vec<NodeId> = Vec::with_capacity(self.shuffle_len);
        let mut to_node: Vec<NodeId> = Vec::with_capacity(self.shuffle_len);
        for node in graph.alive_nodes() {
            self.reseed_if_relet(node, graph);
            let slot = node.index();
            // Pick an alive partner, dropping dead entries as we meet them.
            let partner = loop {
                let len = self.view_lens[slot] as usize;
                if len == 0 {
                    break None;
                }
                let idx = rng.gen_range(0..len);
                let cand = self.views[slot * self.view_size + idx];
                if graph.is_alive(cand) {
                    break Some(cand);
                }
                self.swap_remove_entry(slot, idx);
            };
            let Some(partner) = partner else { continue };

            self.pick_exchange_into(node, partner, rng, &mut to_partner);
            self.pick_exchange_into(partner, node, rng, &mut to_node);
            self.merge(node, &to_node, rng);
            self.merge(partner, &to_partner, rng);
        }
        self.rounds += 1;
    }

    /// Chooses the entries `from` sends to `to` into `out` (cleared first):
    /// up to `shuffle_len − 1` random view entries (excluding `to` itself)
    /// plus `from`'s own address.
    fn pick_exchange_into(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut SmallRng,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        out.extend(
            self.view_slice(from.index())
                .iter()
                .copied()
                .filter(|&p| p != to),
        );
        out.shuffle(rng);
        out.truncate(self.shuffle_len.saturating_sub(1));
        out.push(from);
    }

    /// Merges received entries into `node`'s view: no self, no duplicates;
    /// when full, a uniformly random entry is evicted to make room (uniform
    /// eviction keeps the stationary view distribution unbiased — a
    /// deterministic victim rule measurably skews in-degrees).
    fn merge(&mut self, node: NodeId, incoming: &[NodeId], rng: &mut SmallRng) {
        let slot = node.index();
        for &p in incoming {
            if p == node {
                continue;
            }
            if self.view_slice(slot).contains(&p) {
                continue;
            }
            let len = self.view_lens[slot] as usize;
            if len == self.view_size {
                // swap_remove(evict) then push(p): the evictee's position
                // takes the old tail entry and p lands at the tail.
                let evict = rng.gen_range(0..len);
                let off = slot * self.view_size;
                self.views[off + evict] = self.views[off + len - 1];
                self.views[off + len - 1] = p;
            } else {
                self.push_entry(slot, p);
            }
        }
    }

    /// Checks the service's structural invariants (for tests): views contain
    /// no self-pointers, no duplicates, and never exceed the size cap.
    pub fn check_invariants(&self) -> Result<(), String> {
        for slot in 0..self.view_lens.len() {
            let node = NodeId::from_index(slot);
            let view = self.view_slice(slot);
            if view.len() > self.view_size {
                return Err(format!("{node:?}: view over capacity ({})", view.len()));
            }
            if view.contains(&node) {
                return Err(format!("{node:?}: self-pointer in view"));
            }
            let mut sorted = view.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != view.len() {
                return Err(format!("{node:?}: duplicate view entries"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, HeterogeneousRandom};
    use crate::churn;
    use rand::SeedableRng;

    fn service(n: usize, seed: u64) -> (Graph, PeerSamplingService, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = HeterogeneousRandom::paper(n).build(&mut rng);
        let svc = PeerSamplingService::bootstrap(&g, 12, 6, &mut rng);
        (g, svc, rng)
    }

    #[test]
    fn bootstrap_fills_views() {
        let (g, svc, _) = service(300, 1);
        svc.check_invariants().unwrap();
        for node in g.alive_nodes() {
            assert_eq!(svc.view(node).len(), 12, "view of {node:?}");
        }
    }

    #[test]
    fn invariants_hold_across_rounds() {
        let (g, mut svc, mut rng) = service(300, 2);
        for _ in 0..30 {
            svc.shuffle_round(&g, &mut rng);
            svc.check_invariants().unwrap();
        }
        assert_eq!(svc.rounds(), 30);
    }

    #[test]
    fn shuffling_spreads_views_beyond_neighbors() {
        // Bootstrapped views are mostly overlay neighbors; after shuffling
        // they should be dominated by non-neighbors (global mixing).
        let (g, mut svc, mut rng) = service(1_000, 3);
        for _ in 0..30 {
            svc.shuffle_round(&g, &mut rng);
        }
        let mut neighbor_entries = 0usize;
        let mut total = 0usize;
        for node in g.alive_nodes() {
            for &p in svc.view(node) {
                total += 1;
                if g.has_edge(node, p) {
                    neighbor_entries += 1;
                }
            }
        }
        let frac = neighbor_entries as f64 / total as f64;
        assert!(frac < 0.2, "neighbor fraction after mixing: {frac}");
    }

    #[test]
    fn service_approaches_oracle_uniformity() {
        // The justification for using oracle sampling as the membership
        // stand-in: in-degree across views should be near-balanced after
        // mixing (every node referenced ≈ view_size times).
        let (g, mut svc, mut rng) = service(500, 4);
        for _ in 0..50 {
            svc.shuffle_round(&g, &mut rng);
        }
        let mut indegree = vec![0u32; g.num_slots()];
        for node in g.alive_nodes() {
            for &p in svc.view(node) {
                indegree[p.index()] += 1;
            }
        }
        let mean = indegree.iter().sum::<u32>() as f64 / 500.0;
        let max = *indegree.iter().max().unwrap() as f64;
        // Merge-evict shuffles do not conserve pointers exactly (unlike
        // CYCLON's strict swap), so a node can transiently drop to in-degree
        // 0 until its next self-injection; what must hold is that such holes
        // are rare and no node hoards references.
        let orphaned = indegree[..500].iter().filter(|&&d| d == 0).count();
        assert!(
            orphaned <= 10,
            "too many unreferenced nodes after mixing: {orphaned}/500"
        );
        assert!(
            max < 4.0 * mean,
            "in-degree should be balanced: mean {mean:.1}, max {max}"
        );
    }

    #[test]
    fn sampling_draws_from_view() {
        let (g, mut svc, mut rng) = service(200, 5);
        for _ in 0..10 {
            svc.shuffle_round(&g, &mut rng);
        }
        let node = g.random_alive(&mut rng).unwrap();
        for _ in 0..50 {
            let s = svc.sample(node, &mut rng).unwrap();
            assert!(svc.view(node).contains(&s));
            assert_ne!(s, node);
        }
    }

    #[test]
    fn dead_entries_are_purged_by_healing() {
        let (mut g, mut svc, mut rng) = service(400, 6);
        for _ in 0..10 {
            svc.shuffle_round(&g, &mut rng);
        }
        churn::remove_random_nodes(&mut g, 200, &mut rng);
        for _ in 0..40 {
            svc.shuffle_round(&g, &mut rng);
        }
        // Dead references can linger only in rarely-contacted corners; the
        // overwhelming majority must be gone.
        let (mut dead, mut total) = (0usize, 0usize);
        for node in g.alive_nodes() {
            for &p in svc.view(node) {
                total += 1;
                if !g.is_alive(p) {
                    dead += 1;
                }
            }
        }
        let frac = dead as f64 / total as f64;
        assert!(frac < 0.25, "dead-entry fraction after healing: {frac}");
    }

    #[test]
    fn new_overlay_nodes_are_admitted() {
        let (mut g, mut svc, mut rng) = service(200, 8);
        for _ in 0..5 {
            svc.shuffle_round(&g, &mut rng);
        }
        churn::join_nodes(&mut g, 50, 10, &mut rng);
        for _ in 0..10 {
            svc.shuffle_round(&g, &mut rng);
        }
        svc.check_invariants().unwrap();
        // Every newcomer has a usable view and appears in others' views.
        let mut referenced = 0;
        for slot in 200..250 {
            let node = NodeId::from_index(slot);
            assert!(!svc.view(node).is_empty(), "{node:?} has an empty view");
            for old in g.alive_nodes() {
                if svc.view(old).contains(&node) {
                    referenced += 1;
                    break;
                }
            }
        }
        assert!(
            referenced >= 40,
            "only {referenced}/50 newcomers referenced"
        );
    }

    #[test]
    fn relet_slots_get_fresh_views_not_the_ghosts() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut g = HeterogeneousRandom::paper(200).build(&mut rng);
        g.enable_slot_reuse();
        let mut svc = PeerSamplingService::bootstrap(&g, 10, 5, &mut rng);
        for _ in 0..5 {
            svc.shuffle_round(&g, &mut rng);
        }
        // A node departs; its slot is re-let to a newcomer.
        let ghost = g.random_alive(&mut rng).unwrap();
        g.remove_node(ghost);
        let ghost_view: Vec<NodeId> = svc.view(ghost).to_vec();
        churn::join_nodes(&mut g, 1, 10, &mut rng);
        let tenant = NodeId::from_parts(ghost.index(), ghost.generation().wrapping_add(1));
        assert!(g.is_alive(tenant), "join must re-let the freed slot");

        svc.shuffle_round(&g, &mut rng);
        svc.check_invariants().unwrap();
        // The tenant's view was reseeded from its own neighbors — it is
        // not the departed tenant's leftover entry list.
        let tenant_view = svc.view(tenant);
        assert!(!tenant_view.is_empty(), "tenant must get a usable view");
        assert_ne!(tenant_view, &ghost_view[..], "ghost view must not leak");
        for &p in tenant_view {
            assert_ne!(p, tenant, "no self-pointer");
        }
    }

    #[test]
    fn empty_overlay_is_inert() {
        let g = Graph::with_capacity(0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut svc = PeerSamplingService::bootstrap(&g, 8, 4, &mut rng);
        svc.shuffle_round(&g, &mut rng);
        svc.check_invariants().unwrap();
    }
}
