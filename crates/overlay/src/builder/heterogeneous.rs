//! The paper's heterogeneous random graph (§IV-A, "Graphs construction").

use super::{pick_below_max, GraphBuilder};
use crate::graph::Graph;
use rand::Rng;

/// The construction used for every non-scale-free experiment in the paper:
///
/// > "each node has a number of neighbors varying between 1 and a fixed max
/// > value. At the beginning of the construction process, all nodes are
/// > present in the overlay. Nodes are taken one by one to be wired: the
/// > current node first chooses uniformly at random its current number of
/// > neighbors, and fills its view with again uniformly at random selected
/// > nodes as neighbors, that do not already have the max fixed value."
///
/// Because links are bidirectional, nodes keep receiving passive links after
/// their own turn, so the emergent average degree exceeds the mean target of
/// `(1+max)/2`; with `max = 10` the paper (and this implementation) lands at
/// ≈ 7.2 — above `log10(N)`, which keeps the overlay connected w.h.p.
#[derive(Clone, Copy, Debug)]
pub struct HeterogeneousRandom {
    /// Number of nodes.
    pub n: usize,
    /// Maximum degree (paper: 10).
    pub max_degree: usize,
}

impl HeterogeneousRandom {
    /// Creates the builder. `max_degree` must be ≥ 1.
    pub fn new(n: usize, max_degree: usize) -> Self {
        assert!(max_degree >= 1, "max_degree must be at least 1");
        HeterogeneousRandom { n, max_degree }
    }

    /// The paper's configuration: max 10 neighbors.
    pub fn paper(n: usize) -> Self {
        Self::new(n, 10)
    }
}

impl GraphBuilder for HeterogeneousRandom {
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::with_nodes(self.n);
        for i in 0..self.n {
            let node = crate::NodeId::from_index(i);
            let target = rng.gen_range(1..=self.max_degree);
            // The node may already have gained passive links from earlier
            // nodes' turns; only top up to its own target.
            while g.degree(node) < target {
                match pick_below_max(&g, node, self.max_degree, rng) {
                    Some(partner) => {
                        g.add_edge(node, partner);
                    }
                    None => break, // everyone else saturated; paper's process also stops here
                }
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "heterogeneous-random"
    }
}

/// Wires one *new* node into an existing overlay using the same rule as the
/// construction: uniform target degree in `1..=max_degree`, partners chosen
/// uniformly among below-max nodes. Used for arrivals under churn.
pub fn wire_new_node<R: Rng + ?Sized>(
    g: &mut Graph,
    max_degree: usize,
    rng: &mut R,
) -> crate::NodeId {
    let node = g.add_node();
    let target = rng.gen_range(1..=max_degree);
    while g.degree(node) < target {
        match pick_below_max(g, node, max_degree, rng) {
            Some(partner) => {
                g.add_edge(node, partner);
            }
            None => break,
        }
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn respects_max_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = HeterogeneousRandom::new(2_000, 10).build(&mut rng);
        g.check_invariants().unwrap();
        for n in g.alive_nodes() {
            assert!(g.degree(n) <= 10, "degree {} exceeds max", g.degree(n));
        }
    }

    #[test]
    fn every_node_gets_at_least_one_link() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = HeterogeneousRandom::new(2_000, 10).build(&mut rng);
        let isolated = g.alive_nodes().filter(|&n| g.degree(n) == 0).count();
        assert_eq!(isolated, 0, "{} isolated nodes", isolated);
    }

    #[test]
    fn average_degree_matches_paper() {
        // Paper §IV-A: max 10 neighbors leads "in both overlay sizes to an
        // average of approximatively 7.2".
        let mut rng = SmallRng::seed_from_u64(3);
        let g = HeterogeneousRandom::paper(20_000).build(&mut rng);
        let avg = 2.0 * g.edge_count() as f64 / g.alive_count() as f64;
        assert!(
            (6.5..8.0).contains(&avg),
            "average degree {avg} outside paper range"
        );
    }

    #[test]
    fn wire_new_node_links_into_overlay() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut g = HeterogeneousRandom::new(500, 10).build(&mut rng);
        let before = g.alive_count();
        let n = wire_new_node(&mut g, 10, &mut rng);
        assert_eq!(g.alive_count(), before + 1);
        assert!(g.degree(n) >= 1);
        assert!(g.degree(n) <= 10);
        g.check_invariants().unwrap();
    }

    #[test]
    fn tiny_overlays_build() {
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 5] {
            let g = HeterogeneousRandom::new(n, 10).build(&mut rng);
            g.check_invariants().unwrap();
            assert_eq!(g.alive_count(), n);
        }
    }
}
