//! Barabási–Albert scale-free graphs (growth + preferential attachment).

use super::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::Rng;

/// The Barabási–Albert model \[1\] used for Fig 7/8 of the paper: the graph
/// grows one node at a time and each arriving node attaches to `m` distinct
/// existing nodes with probability proportional to their current degree.
///
/// The paper's instance: 100,000 nodes, "3 neighbors min per node" (`m = 3`),
/// which produced max degree 1177 and average degree ≈ 6 (`≈ 2m`).
#[derive(Clone, Copy, Debug)]
pub struct BarabasiAlbert {
    /// Final number of nodes.
    pub n: usize,
    /// Links created by each arriving node (also the seed-clique size).
    pub m: usize,
}

impl BarabasiAlbert {
    /// Creates the builder. Requires `n > m` and `m ≥ 1`.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(m >= 1, "m must be at least 1");
        assert!(n > m, "need more nodes than links per arrival");
        BarabasiAlbert { n, m }
    }

    /// The paper's Fig 7 configuration (minus scale): `m = 3`.
    pub fn paper(n: usize) -> Self {
        Self::new(n, 3)
    }
}

impl GraphBuilder for BarabasiAlbert {
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::with_capacity(self.n);
        // `endpoints` holds every half-edge endpoint; sampling a uniform
        // element of it is exactly degree-proportional sampling.
        let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * self.m * self.n);

        // Seed: a small clique of m+1 nodes so that every seed node has
        // degree ≥ m and preferential attachment has mass to work with.
        let seed = self.m + 1;
        for _ in 0..seed {
            g.add_node();
        }
        for i in 0..seed {
            for j in (i + 1)..seed {
                let (a, b) = (NodeId::from_index(i), NodeId::from_index(j));
                if g.add_edge(a, b) {
                    endpoints.push(a);
                    endpoints.push(b);
                }
            }
        }

        let mut chosen: Vec<NodeId> = Vec::with_capacity(self.m);
        while g.alive_count() < self.n {
            let node = g.add_node();
            chosen.clear();
            // Draw m distinct targets by degree-proportional sampling.
            while chosen.len() < self.m {
                let target = endpoints[rng.gen_range(0..endpoints.len())];
                if target != node && !chosen.contains(&target) {
                    chosen.push(target);
                }
            }
            for &t in &chosen {
                if g.add_edge(node, t) {
                    endpoints.push(node);
                    endpoints.push(t);
                }
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "barabasi-albert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::degree_stats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = SmallRng::seed_from_u64(21);
        let b = BarabasiAlbert::new(5_000, 3);
        let g = b.build(&mut rng);
        g.check_invariants().unwrap();
        assert_eq!(g.alive_count(), 5_000);
        // Seed clique has m(m+1)/2 edges; each arrival adds m.
        let expected = 3 * 4 / 2 + (5_000 - 4) * 3;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn minimum_degree_is_m() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = BarabasiAlbert::paper(5_000).build(&mut rng);
        let min = g.alive_nodes().map(|n| g.degree(n)).min().unwrap();
        assert_eq!(min, 3, "paper: 3 neighbors min per node");
    }

    #[test]
    fn average_degree_close_to_2m() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = BarabasiAlbert::paper(10_000).build(&mut rng);
        let avg = degree_stats(&g).mean;
        assert!(
            (5.5..6.5).contains(&avg),
            "avg degree {avg}, paper reports ≈6"
        );
    }

    #[test]
    fn produces_heavy_tail() {
        // A hub should emerge whose degree dwarfs the average — the paper saw
        // max 1177 vs average 6 at 100k nodes.
        let mut rng = SmallRng::seed_from_u64(24);
        let g = BarabasiAlbert::paper(20_000).build(&mut rng);
        let stats = degree_stats(&g);
        assert!(
            stats.max as f64 > 20.0 * stats.mean,
            "max {} not heavy-tailed vs mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn power_law_slope_roughly_minus_three() {
        // BA graphs have P(k) ~ k^-3. Fit a slope on the log-log CCDF over a
        // decade and accept a broad band — this guards the distribution shape
        // that Fig 7 plots, not the exact exponent.
        let mut rng = SmallRng::seed_from_u64(25);
        let g = BarabasiAlbert::paper(30_000).build(&mut rng);
        let mut degrees: Vec<usize> = g.alive_nodes().map(|n| g.degree(n)).collect();
        degrees.sort_unstable();
        let n = degrees.len() as f64;
        // CCDF at k = fraction of nodes with degree ≥ k; sample at k=5 and k=50.
        let ccdf = |k: usize| degrees.iter().filter(|&&d| d >= k).count() as f64 / n;
        let (c5, c50) = (ccdf(5), ccdf(50));
        assert!(c5 > 0.0 && c50 > 0.0);
        let slope = (c50.ln() - c5.ln()) / (50f64.ln() - 5f64.ln());
        // CCDF slope for P(k) ~ k^-3 is ≈ -2; accept [-3.0, -1.2].
        assert!((-3.0..-1.2).contains(&slope), "CCDF log-log slope {slope}");
    }
}
