//! Homogeneous (near-regular) random graphs.

use super::{pick_below_max, GraphBuilder};
use crate::graph::Graph;
use rand::Rng;

/// A random graph where every node aims for exactly `degree` neighbors.
///
/// The paper (§IV-A) "also ran some tests in the context of homogeneous
/// graphs. This parameter consistently improved all algorithms" — this
/// builder backs that ablation (`bench_ablations::topology`).
///
/// Construction is the same partner-matching process as
/// [`HeterogeneousRandom`](super::HeterogeneousRandom) with a fixed target,
/// i.e. a near-`k`-regular random graph (a handful of nodes may end below `k`
/// when the remaining candidates saturate).
#[derive(Clone, Copy, Debug)]
pub struct HomogeneousRandom {
    /// Number of nodes.
    pub n: usize,
    /// Target degree for every node.
    pub degree: usize,
}

impl HomogeneousRandom {
    /// Creates the builder. `degree` must be ≥ 1.
    pub fn new(n: usize, degree: usize) -> Self {
        assert!(degree >= 1, "degree must be at least 1");
        HomogeneousRandom { n, degree }
    }
}

impl GraphBuilder for HomogeneousRandom {
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::with_nodes(self.n);
        for i in 0..self.n {
            let node = crate::NodeId::from_index(i);
            while g.degree(node) < self.degree {
                match pick_below_max(&g, node, self.degree, rng) {
                    Some(partner) => {
                        g.add_edge(node, partner);
                    }
                    None => break,
                }
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "homogeneous-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn most_nodes_hit_exact_degree() {
        let mut rng = SmallRng::seed_from_u64(10);
        let g = HomogeneousRandom::new(1_000, 8).build(&mut rng);
        g.check_invariants().unwrap();
        let exact = g.alive_nodes().filter(|&n| g.degree(n) == 8).count();
        assert!(exact >= 990, "only {exact}/1000 nodes at target degree");
        for n in g.alive_nodes() {
            assert!(g.degree(n) <= 8);
        }
    }

    #[test]
    fn degree_variance_is_lower_than_heterogeneous() {
        use crate::metrics::degree_stats;
        let mut rng = SmallRng::seed_from_u64(11);
        let homo = HomogeneousRandom::new(2_000, 7).build(&mut rng);
        let hetero = super::super::HeterogeneousRandom::new(2_000, 10).build(&mut rng);
        let sd_homo = degree_stats(&homo).std_dev;
        let sd_hetero = degree_stats(&hetero).std_dev;
        assert!(
            sd_homo < sd_hetero / 2.0,
            "homogeneous sd {sd_homo} not clearly below heterogeneous sd {sd_hetero}"
        );
    }
}
