//! Ring lattices and Watts–Strogatz small worlds (test topologies).

use super::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::Rng;

/// A ring where each node links to its `k/2` nearest neighbors on each side.
///
/// The worst topology for random-walk mixing (diameter Θ(n/k)) — used in
/// tests to show how walk budget `T` must grow on poorly-expanding graphs,
/// the caveat §III-A raises ("expansion properties of the graph influence how
/// large T should be selected").
#[derive(Clone, Copy, Debug)]
pub struct RingLattice {
    /// Number of nodes.
    pub n: usize,
    /// Even number of lattice links per node.
    pub k: usize,
}

impl RingLattice {
    /// Creates the builder. `k` must be even, positive and `< n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
        assert!(k < n, "k must be smaller than n");
        RingLattice { n, k }
    }
}

impl GraphBuilder for RingLattice {
    fn build<R: Rng + ?Sized>(&self, _rng: &mut R) -> Graph {
        let mut g = Graph::with_nodes(self.n);
        for i in 0..self.n {
            for d in 1..=(self.k / 2) {
                let j = (i + d) % self.n;
                g.add_edge(NodeId::from_index(i), NodeId::from_index(j));
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "ring-lattice"
    }
}

/// Watts–Strogatz small world: a [`RingLattice`] whose links are re-wired to
/// a uniform random endpoint with probability `beta`.
#[derive(Clone, Copy, Debug)]
pub struct WattsStrogatz {
    /// Number of nodes.
    pub n: usize,
    /// Even number of lattice links per node.
    pub k: usize,
    /// Re-wiring probability in `[0, 1]`.
    pub beta: f64,
}

impl WattsStrogatz {
    /// Creates the builder; same constraints as [`RingLattice`], plus
    /// `beta ∈ [0, 1]`.
    pub fn new(n: usize, k: usize, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        let _ = RingLattice::new(n, k); // validate n/k
        WattsStrogatz { n, k, beta }
    }
}

impl GraphBuilder for WattsStrogatz {
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut g = RingLattice {
            n: self.n,
            k: self.k,
        }
        .build(rng);
        for i in 0..self.n {
            let a = NodeId::from_index(i);
            for d in 1..=(self.k / 2) {
                if rng.gen::<f64>() >= self.beta {
                    continue;
                }
                let b = NodeId::from_index((i + d) % self.n);
                // Re-wire a–b to a–random, keeping degree bounded and simple.
                let target = NodeId(rng.gen_range(0..self.n as u32));
                if target != a && !g.has_edge(a, target) && g.remove_edge(a, b) {
                    g.add_edge(a, target);
                }
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "watts-strogatz"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ring_is_k_regular_and_connected() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = RingLattice::new(100, 4).build(&mut rng);
        g.check_invariants().unwrap();
        for n in g.alive_nodes() {
            assert_eq!(g.degree(n), 4);
        }
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn ws_preserves_edge_count_and_connectivity_mostly() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = WattsStrogatz::new(500, 6, 0.2).build(&mut rng);
        g.check_invariants().unwrap();
        // Rewiring never creates or destroys edges (only moves endpoints),
        // except when the re-wire target collides and the move is skipped.
        assert_eq!(g.edge_count(), 500 * 3);
    }

    #[test]
    fn ws_beta_zero_is_the_lattice() {
        let mut rng = SmallRng::seed_from_u64(43);
        let ws = WattsStrogatz::new(64, 4, 0.0).build(&mut rng);
        let ring = RingLattice::new(64, 4).build(&mut rng);
        for i in 0..64 {
            let a = NodeId::from_index(i);
            let mut x: Vec<_> = ws.neighbors(a).to_vec();
            let mut y: Vec<_> = ring.neighbors(a).to_vec();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }
}
