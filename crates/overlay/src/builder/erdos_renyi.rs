//! Erdős–Rényi random graphs (test topology).

use super::GraphBuilder;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::Rng;

/// `G(n, m)`: `n` nodes and exactly `m` distinct uniform random edges.
///
/// Not used by the paper itself, but a handy calibration topology: its
/// mixing/expansion properties are textbook, which makes it the cleanest
/// substrate for validating the random-walk sampler.
#[derive(Clone, Copy, Debug)]
pub struct ErdosRenyi {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
}

impl ErdosRenyi {
    /// Creates a `G(n, m)` builder.
    ///
    /// # Panics
    /// Panics if `m` exceeds the number of possible edges.
    pub fn new(n: usize, m: usize) -> Self {
        let max = n.saturating_mul(n.saturating_sub(1)) / 2;
        assert!(m <= max, "{m} edges requested but only {max} possible");
        ErdosRenyi { n, m }
    }

    /// `G(n, p)` flavor: expected degree `avg_degree`.
    pub fn with_avg_degree(n: usize, avg_degree: f64) -> Self {
        let m = (n as f64 * avg_degree / 2.0).round() as usize;
        Self::new(n, m)
    }
}

impl GraphBuilder for ErdosRenyi {
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut g = Graph::with_nodes(self.n);
        let mut placed = 0;
        while placed < self.m {
            let a = NodeId(rng.gen_range(0..self.n as u32));
            let b = NodeId(rng.gen_range(0..self.n as u32));
            if g.add_edge(a, b) {
                placed += 1;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "erdos-renyi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = ErdosRenyi::new(500, 2_000).build(&mut rng);
        g.check_invariants().unwrap();
        assert_eq!(g.edge_count(), 2_000);
    }

    #[test]
    fn avg_degree_constructor() {
        let mut rng = SmallRng::seed_from_u64(32);
        let g = ErdosRenyi::with_avg_degree(1_000, 8.0).build(&mut rng);
        let avg = 2.0 * g.edge_count() as f64 / g.alive_count() as f64;
        assert!((avg - 8.0).abs() < 0.1, "avg degree {avg}");
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_impossible_edge_count() {
        ErdosRenyi::new(3, 10);
    }
}
