//! Random overlay constructions.
//!
//! The paper's evaluation (§IV-A) uses two topologies:
//!
//! * [`HeterogeneousRandom`] — each node draws a target degree uniformly from
//!   `1..=max` and wires to uniform random partners that are still below
//!   `max`. With `max = 10` this yields the paper's reported average degree
//!   of ≈ 7.2. This is the *worst case* topology the paper standardizes on.
//! * [`BarabasiAlbert`] — scale-free graph with growth and preferential
//!   attachment (Fig 7), 3 links minimum per arriving node.
//!
//! We additionally provide [`HomogeneousRandom`] (the paper notes homogeneous
//! degree "consistently improved all algorithms" — used by the topology
//! ablation), [`ErdosRenyi`], [`RingLattice`] and [`WattsStrogatz`] as extra
//! test topologies, since the algorithms are "generally applicable
//! irrespective of the underlying structure".

mod erdos_renyi;
pub(crate) mod heterogeneous;
mod homogeneous;
mod ring;
mod scale_free;

pub use erdos_renyi::ErdosRenyi;
pub use heterogeneous::{wire_new_node, HeterogeneousRandom};
pub use homogeneous::HomogeneousRandom;
pub use ring::{RingLattice, WattsStrogatz};
pub use scale_free::BarabasiAlbert;

use crate::graph::Graph;
use rand::Rng;

/// A recipe that constructs an overlay graph from randomness.
pub trait GraphBuilder {
    /// Builds the overlay.
    fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph;

    /// Human-readable topology name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// Picks an alive partner for `node`, uniformly among nodes with degree
/// `< max_degree`, excluding `node` itself and current neighbors.
///
/// Strategy: rejection-sample a few times (cheap in the common case), then
/// fall back to an exhaustive scan so construction terminates even when only
/// a handful of below-max candidates remain.
pub(crate) fn pick_below_max<R: Rng + ?Sized>(
    graph: &Graph,
    node: crate::NodeId,
    max_degree: usize,
    rng: &mut R,
) -> Option<crate::NodeId> {
    const REJECTION_TRIES: usize = 64;
    for _ in 0..REJECTION_TRIES {
        let cand = graph.random_alive(rng)?;
        if cand != node && graph.degree(cand) < max_degree && !graph.has_edge(node, cand) {
            return Some(cand);
        }
    }
    // Exhaustive fallback: collect all eligible candidates and pick one.
    let eligible: Vec<crate::NodeId> = graph
        .alive_nodes()
        .filter(|&c| c != node && graph.degree(c) < max_degree && !graph.has_edge(node, c))
        .collect();
    if eligible.is_empty() {
        None
    } else {
        Some(eligible[rng.gen_range(0..eligible.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pick_below_max_respects_constraints() {
        let mut g = Graph::with_nodes(5);
        // Saturate nodes 1 and 2 at degree 2 (max we will use below).
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(4));
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = pick_below_max(&g, NodeId(0), 2, &mut rng).unwrap();
            // 1 and 2 are at max degree; 0 is self; so only 3 or 4 qualify.
            assert!(p == NodeId(3) || p == NodeId(4), "got {p:?}");
        }
    }

    #[test]
    fn pick_below_max_exhaustive_fallback() {
        // Only one eligible candidate: rejection sampling will likely miss it,
        // forcing the exhaustive path.
        let mut g = Graph::with_nodes(300);
        for i in 1..299 {
            // saturate nodes 1..299 at degree 1 by pairing them up
            if i % 2 == 1 {
                g.add_edge(NodeId(i), NodeId(i + 1));
            }
        }
        let mut rng = SmallRng::seed_from_u64(5);
        // node 0 and node 299 are the only ones below max degree 1.
        let p = pick_below_max(&g, NodeId(0), 1, &mut rng).unwrap();
        assert_eq!(p, NodeId(299));
    }

    #[test]
    fn pick_below_max_returns_none_when_saturated() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(1), NodeId(2));
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(pick_below_max(&g, NodeId(0), 1, &mut rng), None);
    }
}
