//! Node identifiers.

use std::fmt;

/// Identifier of an overlay node.
///
/// A `NodeId` is a dense index into the [`Graph`](crate::Graph) that created
/// it. Identifiers are never reused: a node removed by churn keeps its slot
/// (marked dead) so that message traces and samples collected before the
/// departure remain meaningful.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The slot index of this node inside its graph.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a slot index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 17, 1_000_000] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_and_debug() {
        let n = NodeId(42);
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
