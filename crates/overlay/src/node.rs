//! Node identifiers.

use std::fmt;

/// Bits of a `NodeId` that address the graph slot; the remaining high bits
/// carry the slot's *generation*.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;

/// The maximum number of node slots a [`Graph`](crate::Graph) can allocate
/// (2²⁴ ≈ 16.7M). Overlays that churn past this many *cumulative* arrivals
/// must enable slot reuse
/// ([`Graph::enable_slot_reuse`](crate::Graph::enable_slot_reuse)), which
/// bounds the slot count by the peak population instead.
pub const MAX_SLOTS: usize = 1 << SLOT_BITS;

/// Identifier of an overlay node.
///
/// A `NodeId` is a dense *slab* reference into the [`Graph`](crate::Graph)
/// that created it: the low 24 bits address the slot, the high 8 bits carry
/// the slot's **generation**. In the default (append-only) mode every node
/// gets a fresh slot and generation 0, so ids are plain dense indices — the
/// historic representation, bit for bit. With slot reuse enabled, a node
/// joining after a departure takes over a dead slot under an incremented
/// generation: the raw id value differs from the departed occupant's, and
/// [`Graph::is_alive`](crate::Graph::is_alive) validates the generation, so
/// a message (or sample) addressed to the *old* id can never be mistaken
/// for one addressed to the new tenant. With 8 generation bits, aliasing
/// would require an id to survive 256 reuses of its slot — far beyond any
/// message lifetime the simulator produces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The slot index of this node inside its graph.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & SLOT_MASK) as usize
    }

    /// The generation under which this id was minted (0 for every id of an
    /// append-only graph).
    #[inline]
    pub fn generation(self) -> u8 {
        (self.0 >> SLOT_BITS) as u8
    }

    /// Builds a `NodeId` from a slot index (generation 0).
    ///
    /// # Panics
    /// Panics (in debug builds) if `index` does not fit in the slot bits.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < MAX_SLOTS, "node index overflows the slot bits");
        NodeId(index as u32)
    }

    /// Builds the id of `index` under `generation` (graph-internal; public
    /// so tests and tools can reconstruct reused-slot ids).
    #[inline]
    pub fn from_parts(index: usize, generation: u8) -> Self {
        debug_assert!(index < MAX_SLOTS, "node index overflows the slot bits");
        NodeId(((generation as u32) << SLOT_BITS) | index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "n{}", self.0)
        } else {
            write!(f, "n{}g{}", self.index(), self.generation())
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 17, 1_000_000, MAX_SLOTS - 1] {
            assert_eq!(NodeId::from_index(i).index(), i);
            assert_eq!(NodeId::from_index(i).generation(), 0);
        }
    }

    #[test]
    fn generation_roundtrip() {
        for (i, g) in [(0usize, 1u8), (17, 255), (MAX_SLOTS - 1, 7)] {
            let id = NodeId::from_parts(i, g);
            assert_eq!(id.index(), i);
            assert_eq!(id.generation(), g);
            assert_ne!(id, NodeId::from_index(i), "generations distinguish ids");
        }
    }

    #[test]
    fn display_and_debug() {
        let n = NodeId(42);
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
        let g = NodeId::from_parts(42, 3);
        assert_eq!(format!("{g:?}"), "n42g3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
