//! Node churn: arrivals, departures, catastrophic failures.
//!
//! Semantics follow §IV-A/§IV-D of the paper:
//!
//! * departures remove all of the victim's links; survivors do **not**
//!   re-wire ("nodes that have lost one or several neighbors do not create
//!   new links with other nodes") — so sustained departures degrade overlay
//!   connectivity, which is what breaks Aggregation past ~30% losses;
//! * arrivals wire like the original construction (uniform target degree,
//!   below-max partners).

use crate::builder::wire_new_node;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::Rng;

/// A single churn action applied atomically to the overlay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnOp {
    /// `count` new nodes join, each wired with `max_degree`.
    Join { count: usize, max_degree: usize },
    /// `count` alive nodes, chosen uniformly, leave (no-repair).
    Leave { count: usize },
    /// A catastrophic failure: `fraction` of the *current* alive nodes die
    /// simultaneously (paper: −25%).
    Catastrophe { fraction: f64 },
}

impl ChurnOp {
    /// Applies the operation; returns how many nodes joined (+) or left (−).
    pub fn apply<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R) -> i64 {
        match *self {
            ChurnOp::Join { count, max_degree } => {
                join_nodes(g, count, max_degree, rng);
                count as i64
            }
            ChurnOp::Leave { count } => -(remove_random_nodes(g, count, rng).len() as i64),
            ChurnOp::Catastrophe { fraction } => {
                -(catastrophic_failure(g, fraction, rng).len() as i64)
            }
        }
    }

    /// [`apply`](Self::apply) with identity tracking: joined node ids are
    /// appended to `delta.joined` and victims to `delta.left`, so workload
    /// models can maintain per-node session state across arbitrary churn.
    /// Consumes exactly the same RNG draws as `apply`.
    pub fn apply_into<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R, delta: &mut ChurnDelta) {
        match *self {
            ChurnOp::Join { count, max_degree } => {
                // Collect the actual minted ids (identical draws to
                // `join_nodes`): under slot reuse an arrival may re-let a
                // dead slot, so "the new slots" is not a range.
                for _ in 0..count {
                    delta.joined.push(wire_new_node(g, max_degree, rng));
                }
            }
            ChurnOp::Leave { count } => {
                delta.left.extend(remove_random_nodes(g, count, rng));
            }
            ChurnOp::Catastrophe { fraction } => {
                delta.left.extend(catastrophic_failure(g, fraction, rng));
            }
        }
    }
}

/// The identities a batch of churn ops touched: which nodes joined and which
/// left, in application order. Produced by [`ChurnOp::apply_into`] and
/// consumed by workload models that track per-node session state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnDelta {
    /// Nodes that joined, in wiring order.
    pub joined: Vec<NodeId>,
    /// Nodes that departed (uniform victims, catastrophe victims, or
    /// targeted departures), in removal order.
    pub left: Vec<NodeId>,
}

impl ChurnDelta {
    /// Clears both lists, keeping their allocations.
    pub fn clear(&mut self) {
        self.joined.clear();
        self.left.clear();
    }

    /// Net population change of the batch.
    pub fn net(&self) -> i64 {
        self.joined.len() as i64 - self.left.len() as i64
    }
}

/// Adds `count` nodes, each wired into the overlay like the paper's
/// construction process with the given `max_degree`.
pub fn join_nodes<R: Rng + ?Sized>(g: &mut Graph, count: usize, max_degree: usize, rng: &mut R) {
    for _ in 0..count {
        wire_new_node(g, max_degree, rng);
    }
}

/// Removes up to `count` uniformly chosen alive nodes (bounded by the
/// current population). Returns the victims' ids in removal order, so
/// callers — workload models above all — can track per-node session state.
///
/// This is the churn hot path: one scratch buffer absorbs every victim's
/// neighbor list ([`Graph::remove_node_with`]), so a catastrophe removing
/// tens of thousands of nodes performs one allocation for the victim list
/// and none per removal.
pub fn remove_random_nodes<R: Rng + ?Sized>(
    g: &mut Graph,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let count = count.min(g.alive_count());
    let mut victims = Vec::with_capacity(count);
    let mut scratch = Vec::new();
    for _ in 0..count {
        let victim = g
            .random_alive(rng)
            .expect("count bounded by alive population");
        g.remove_node_with(victim, &mut scratch);
        victims.push(victim);
    }
    victims
}

/// Kills `fraction` (rounded) of the current alive population at once.
/// Returns the victims' ids in removal order.
pub fn catastrophic_failure<R: Rng + ?Sized>(
    g: &mut Graph,
    fraction: f64,
    rng: &mut R,
) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let victims = (g.alive_count() as f64 * fraction).round() as usize;
    remove_random_nodes(g, victims, rng)
}

/// A steady churn mixer: per step, `arrival_rate` joins and `departure_rate`
/// departures (expected values; fractional parts are resolved by Bernoulli
/// draws). Models the paper's "constant nodes arrivals and departures".
#[derive(Clone, Copy, Debug)]
pub struct SteadyChurn {
    /// Expected joins per step.
    pub arrival_rate: f64,
    /// Expected departures per step.
    pub departure_rate: f64,
    /// Degree cap for newly wired nodes.
    pub max_degree: usize,
}

impl SteadyChurn {
    /// Applies one step of churn; returns net population change.
    pub fn step<R: Rng + ?Sized>(&self, g: &mut Graph, rng: &mut R) -> i64 {
        let joins = sample_rate(self.arrival_rate, rng);
        let leaves = sample_rate(self.departure_rate, rng);
        join_nodes(g, joins, self.max_degree, rng);
        let left = remove_random_nodes(g, leaves, rng).len();
        joins as i64 - left as i64
    }
}

fn sample_rate<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> usize {
    debug_assert!(rate >= 0.0);
    let base = rate.floor() as usize;
    let frac = rate - rate.floor();
    base + usize::from(rng.gen::<f64>() < frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, HeterogeneousRandom};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn overlay(n: usize, seed: u64) -> (Graph, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = HeterogeneousRandom::paper(n).build(&mut rng);
        (g, rng)
    }

    #[test]
    fn join_grows_population_and_stays_valid() {
        let (mut g, mut rng) = overlay(500, 51);
        join_nodes(&mut g, 100, 10, &mut rng);
        assert_eq!(g.alive_count(), 600);
        g.check_invariants().unwrap();
    }

    #[test]
    fn leave_shrinks_population_no_repair() {
        let (mut g, mut rng) = overlay(500, 52);
        let edges_before = g.edge_count();
        let removed = remove_random_nodes(&mut g, 200, &mut rng);
        assert_eq!(removed.len(), 200);
        assert_eq!(g.alive_count(), 300);
        assert!(g.edge_count() < edges_before);
        // The returned ids are the actual victims: all dead, all distinct.
        for &v in &removed {
            assert!(!g.is_alive(v));
        }
        let mut dedup = removed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), removed.len(), "victims must be distinct");
        g.check_invariants().unwrap();
    }

    #[test]
    fn leave_caps_at_population() {
        let (mut g, mut rng) = overlay(50, 53);
        let removed = remove_random_nodes(&mut g, 1_000, &mut rng);
        assert_eq!(removed.len(), 50);
        assert_eq!(g.alive_count(), 0);
    }

    #[test]
    fn catastrophe_removes_fraction_of_current_size() {
        let (mut g, mut rng) = overlay(1_000, 54);
        let removed = catastrophic_failure(&mut g, 0.25, &mut rng);
        assert_eq!(removed.len(), 250);
        assert_eq!(g.alive_count(), 750);
        // a second -25% applies to the *current* size
        let removed = catastrophic_failure(&mut g, 0.25, &mut rng);
        assert_eq!(removed.len(), 188); // round(750 * 0.25)
        g.check_invariants().unwrap();
    }

    #[test]
    fn apply_into_tracks_identities_and_matches_apply() {
        // Same seed: apply and apply_into must consume identical draws and
        // produce identical overlays, with the delta naming every id.
        let (mut a, mut rng_a) = overlay(400, 58);
        let (mut b, mut rng_b) = overlay(400, 58);
        let ops = [
            ChurnOp::Leave { count: 60 },
            ChurnOp::Join {
                count: 25,
                max_degree: 10,
            },
            ChurnOp::Catastrophe { fraction: 0.25 },
        ];
        let mut delta = ChurnDelta::default();
        let mut net = 0i64;
        for op in &ops {
            net += op.apply(&mut a, &mut rng_a);
            op.apply_into(&mut b, &mut rng_b, &mut delta);
        }
        assert_eq!(delta.net(), net);
        assert_eq!(delta.joined.len(), 25);
        assert_eq!(delta.left.len(), 60 + 91); // round(365 * 0.25) = 91
        assert_eq!(a.alive_count(), b.alive_count());
        assert_eq!(a.edge_count(), b.edge_count());
        // Joined ids are the new slots; a joiner may later die (the final
        // catastrophe draws uniformly), so "alive" is not guaranteed — but
        // anyone not named in `left` must still be alive.
        for &j in &delta.joined {
            assert!(j.index() >= 400 && j.index() < b.num_slots());
            if !delta.left.contains(&j) {
                assert!(b.is_alive(j));
            }
        }
        for &l in &delta.left {
            assert!(!b.is_alive(l));
        }
        delta.clear();
        assert!(delta.joined.is_empty() && delta.left.is_empty());
        b.check_invariants().unwrap();
    }

    #[test]
    fn churn_op_reports_net_change() {
        let (mut g, mut rng) = overlay(400, 55);
        assert_eq!(
            ChurnOp::Join {
                count: 40,
                max_degree: 10
            }
            .apply(&mut g, &mut rng),
            40
        );
        assert_eq!(ChurnOp::Leave { count: 140 }.apply(&mut g, &mut rng), -140);
        assert_eq!(
            ChurnOp::Catastrophe { fraction: 0.5 }.apply(&mut g, &mut rng),
            -150
        );
        assert_eq!(g.alive_count(), 150);
    }

    #[test]
    fn steady_churn_tracks_expected_drift() {
        let (mut g, mut rng) = overlay(2_000, 56);
        let churn = SteadyChurn {
            arrival_rate: 2.5,
            departure_rate: 0.5,
            max_degree: 10,
        };
        for _ in 0..500 {
            churn.step(&mut g, &mut rng);
        }
        // expected net drift: +2 per step => ~+1000; allow wide slack
        let n = g.alive_count() as i64;
        assert!((2_700..=3_300).contains(&n), "population {n}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn sample_rate_handles_integer_and_fractional() {
        let mut rng = SmallRng::seed_from_u64(57);
        assert_eq!(sample_rate(3.0, &mut rng), 3);
        let mean: f64 = (0..10_000)
            .map(|_| sample_rate(0.3, &mut rng) as f64)
            .sum::<f64>()
            / 10_000.0;
        assert!((0.25..0.35).contains(&mean), "mean {mean}");
    }
}
