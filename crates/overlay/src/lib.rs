//! # p2p-overlay
//!
//! Unstructured peer-to-peer overlay graphs, as used by the HPDC 2006
//! comparative study *"Peer to peer size estimation in large and dynamic
//! networks"* (Le Merrer, Kermarrec, Massoulié).
//!
//! The crate provides:
//!
//! * [`Graph`] — a mutable undirected overlay: adjacency lists, an alive-set
//!   with O(1) uniform sampling of alive nodes, and O(degree) node removal.
//! * [`builder`] — the paper's heterogeneous random-graph construction
//!   (§IV-A), homogeneous k-regular graphs, Barabási–Albert scale-free graphs
//!   (Fig 7), Erdős–Rényi graphs and ring/Watts–Strogatz lattices for tests.
//! * [`churn`] — node arrivals, departures and catastrophic failures with the
//!   paper's no-repair semantics (survivors do not re-wire lost links).
//! * [`connectivity`] — BFS components, reachability and hop distances.
//! * [`metrics`] — degree statistics and distributions.
//!
//! ## Quick example
//!
//! ```
//! use p2p_overlay::builder::HeterogeneousRandom;
//! use p2p_overlay::GraphBuilder;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let graph = HeterogeneousRandom::new(1_000, 10).build(&mut rng);
//! assert_eq!(graph.alive_count(), 1_000);
//! // The paper reports an emergent average degree of about 7.2 at max = 10.
//! let avg = p2p_overlay::metrics::degree_stats(&graph).mean;
//! assert!(avg > 5.0 && avg < 9.0);
//! ```

pub mod bitset;
pub mod builder;
pub mod churn;
pub mod connectivity;
pub mod graph;
pub mod io;
pub mod membership;
pub mod metrics;
pub mod node;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use graph::Graph;
pub use membership::PeerSamplingService;
pub use node::{NodeId, MAX_SLOTS};
