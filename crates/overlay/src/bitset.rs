//! A fixed-capacity bit set used for alive/visited marks.
//!
//! The simulator repeatedly needs "was this node visited / is it alive"
//! queries over up to a million nodes; a `Vec<bool>` wastes 8x the memory and
//! a `HashSet` is an order of magnitude slower. This small dense bit set
//! covers exactly what the crate needs without an external dependency.

/// A growable dense bit set over `usize` indices.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    /// Number of set bits, maintained incrementally.
    ones: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty bit set with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            blocks: vec![0; n.div_ceil(BITS)],
            ones: 0,
        }
    }

    /// Number of bits currently set.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Capacity in bits (multiple of 64).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.blocks.len() * BITS
    }

    /// Returns whether bit `i` is set. Out-of-range indices read as unset.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        match self.blocks.get(i / BITS) {
            Some(b) => (b >> (i % BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to `value`, growing if needed. Returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) -> bool {
        if i >= self.capacity() {
            self.blocks.resize((i + 1).div_ceil(BITS), 0);
        }
        let block = &mut self.blocks[i / BITS];
        let mask = 1u64 << (i % BITS);
        let was = *block & mask != 0;
        if value {
            *block |= mask;
            if !was {
                self.ones += 1;
            }
        } else {
            *block &= !mask;
            if was {
                self.ones -= 1;
            }
        }
        was
    }

    /// Sets bit `i`, returning `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        !self.set(i, true)
    }

    /// Clears bit `i`, returning `true` if it was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        self.set(i, false)
    }

    /// Clears all bits, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.ones = 0;
    }

    /// Returns `true` if no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, &block)| BlockOnes {
                block,
                base: bi * BITS,
            })
    }
}

/// Iterator over the set bits of a single 64-bit block.
struct BlockOnes {
    block: u64,
    base: usize,
}

impl Iterator for BlockOnes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.block == 0 {
            return None;
        }
        let tz = self.block.trailing_zeros() as usize;
        self.block &= self.block - 1;
        Some(self.base + tz)
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = BitSet::with_capacity(100);
        assert!(!s.get(5));
        s.set(5, true);
        assert!(s.get(5));
        assert_eq!(s.count_ones(), 1);
        s.set(5, false);
        assert!(!s.get(5));
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn grows_on_demand() {
        let mut s = BitSet::default();
        s.set(1000, true);
        assert!(s.get(1000));
        assert!(!s.get(999));
        assert!(s.capacity() >= 1001);
    }

    #[test]
    fn out_of_range_reads_unset() {
        let s = BitSet::with_capacity(10);
        assert!(!s.get(1_000_000));
    }

    #[test]
    fn insert_remove_report_change() {
        let mut s = BitSet::with_capacity(10);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
    }

    #[test]
    fn count_ones_tracks_mutations() {
        let mut s = BitSet::with_capacity(256);
        for i in (0..256).step_by(3) {
            s.insert(i);
        }
        assert_eq!(s.count_ones(), (0..256).step_by(3).count());
        for i in (0..256).step_by(6) {
            s.remove(i);
        }
        assert_eq!(
            s.count_ones(),
            (0..256).step_by(3).count() - (0..256).step_by(6).count()
        );
    }

    #[test]
    fn iter_yields_sorted_set_bits() {
        let bits = [0usize, 1, 63, 64, 65, 127, 128, 200];
        let s: BitSet = bits.iter().copied().collect();
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::with_capacity(128);
        s.insert(100);
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
    }
}
