//! Table I bench — regenerates the overhead/accuracy table and times one
//! estimation per configuration (wall-clock analogue of the message counts).

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{bench_scale, criterion_config, figures_dir, BENCH_SEED};
use p2p_estimation::aggregation::Aggregation;
use p2p_estimation::{HopsSampling, SampleCollide, SizeEstimator};
use p2p_experiments::table::table1;
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
use p2p_sim::rng::small_rng;
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn regenerate_table(c: &mut Criterion) {
    let scale = bench_scale();
    let runs = if scale.large >= 100_000 { 10 } else { 20 };
    let t = table1(scale.large, runs, BENCH_SEED);
    println!("{t}");
    let dir = figures_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("table1.csv");
        if std::fs::write(&path, t.to_csv()).is_ok() {
            println!("[table] table1 -> {}", path.display());
        }
    }

    // Nominal checks the paper derives in closed form (§IV-E), printed so a
    // bench run doubles as a sanity report:
    //   Aggregation overhead = N × 50 × 2.
    let agg = &t.rows[3];
    println!(
        "[check] aggregation overhead {} vs closed form {}",
        agg.overhead_messages,
        scale.large * 50 * 2
    );

    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(5_000).build(&mut rng);
    c.bench_function("table1/sample_collide_one_estimation_5k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
    });
}

fn per_algorithm_cost(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(5_000).build(&mut rng);
    let mut group = c.benchmark_group("table1");
    group.bench_function("hops_sampling_one_estimation_5k", |b| {
        let mut hs = HopsSampling::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(hs.estimate(&graph, &mut rng, &mut msgs)));
    });
    group.bench_function("aggregation_one_estimation_5k", |b| {
        let mut agg = Aggregation::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(agg.estimate(&graph, &mut rng, &mut msgs)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = regenerate_table, per_algorithm_cost
}
criterion_main!(benches);
