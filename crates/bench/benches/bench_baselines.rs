//! Baseline benches — re-validates the paper's three rejections:
//! Random Tour (§II), the biased inverted birthday paradox (§II/\[2\]), and
//! the `gossipSample` reply heuristic (§III-B).

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{criterion_config, BENCH_SEED};
use p2p_estimation::baselines::{GossipSampleHops, InvertedBirthdayParadox, RandomTour};
use p2p_estimation::sampling::{FixedHopSampler, RandomWalkSampler};
use p2p_estimation::{HopsSampling, SampleCollide, SizeEstimator};
use p2p_overlay::builder::{BarabasiAlbert, GraphBuilder, HeterogeneousRandom};
use p2p_overlay::Graph;
use p2p_sim::rng::{derive_seed, small_rng};
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn stats_of<E: SizeEstimator>(
    est: &mut E,
    graph: &Graph,
    runs: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = small_rng(seed);
    let mut msgs = MessageCounter::new();
    let truth = graph.alive_count() as f64;
    let mut vals = Vec::with_capacity(runs);
    for _ in 0..runs {
        if let Some(e) = est.estimate(graph, &mut rng, &mut msgs) {
            vals.push(e);
        }
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let err = vals.iter().map(|v| (v - truth).abs() / truth).sum::<f64>() / vals.len() as f64;
    (
        100.0 * mean / truth,
        100.0 * err,
        msgs.total() as f64 / vals.len() as f64,
    )
}

/// §II: Sample&Collide was chosen over Random Tour for its better
/// accuracy/overhead trade-off — measure both on the same overlay.
fn random_tour(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 1));
    let graph = HeterogeneousRandom::paper(5_000).build(&mut rng);
    println!("\n[baseline] Random Tour vs Sample&Collide (5k nodes, 15 runs)");
    println!(
        "{:<18} {:>10} {:>10} {:>14}",
        "algorithm", "quality%", "|err|%", "msgs/est"
    );
    let mut rt = RandomTour::default();
    let (q, e_rt, m_rt) = stats_of(&mut rt, &graph, 15, derive_seed(BENCH_SEED, 11));
    println!("{:<18} {q:>10.1} {e_rt:>10.1} {m_rt:>14.0}", "RandomTour");
    let mut sc = SampleCollide::paper();
    let (q, e_sc, m_sc) = stats_of(&mut sc, &graph, 15, derive_seed(BENCH_SEED, 12));
    println!(
        "{:<18} {q:>10.1} {e_sc:>10.1} {m_sc:>14.0}",
        "Sample&Collide"
    );
    // A single tour is cheap but wildly noisy; the fair comparison is cost
    // at equal accuracy. Error averages down as 1/√runs, so Random Tour
    // needs (e_rt/e_sc)² tours to match one S&C estimation.
    let tours_needed = (e_rt / e_sc).powi(2);
    println!(
        "  -> equal-accuracy cost: RandomTour ≈ {:.0} msgs ({tours_needed:.0} tours) vs S&C {m_sc:.0}",
        m_rt * tours_needed
    );

    c.bench_function("baseline_random_tour/one_tour_5k", |b| {
        let mut msgs = MessageCounter::new();
        let rt = RandomTour::default();
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(rt.estimate_from(&graph, init, &mut rng, &mut msgs))
        });
    });
}

/// §III-B: the `gossipSample` reply heuristic is noisier than
/// `minHopsReporting` — the reason the paper switched after reproducing both.
fn gossip_sample(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 2));
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    println!("\n[baseline] gossipSample vs minHopsReporting (10k nodes, 25 runs)");
    println!("{:<18} {:>10} {:>10}", "reply rule", "quality%", "|err|%");
    let mut gs = GossipSampleHops::paper();
    let (q, e, _) = stats_of(&mut gs, &graph, 25, derive_seed(BENCH_SEED, 21));
    println!("{:<18} {q:>10.1} {e:>10.1}", "gossipSample");
    let mut mh = HopsSampling::paper();
    let (q, e, _) = stats_of(&mut mh, &graph, 25, derive_seed(BENCH_SEED, 22));
    println!("{:<18} {q:>10.1} {e:>10.1}", "minHopsReporting");

    c.bench_function("baseline_gossip_sample/estimate_10k", |b| {
        let mut gs = GossipSampleHops::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(gs.estimate(&graph, &mut rng, &mut msgs)));
    });
}

/// §II/\[2\]: the original inverted birthday paradox under a degree-biased
/// sampler systematically underestimates on scale-free overlays, while the
/// CTRW sampler does not — the core argument for Sample&Collide's sampler.
fn biased_birthday(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 3));
    let graph = BarabasiAlbert::paper(5_000).build(&mut rng);
    println!("\n[baseline] inverted birthday paradox on a 5k scale-free overlay (200 runs)");
    println!("{:<22} {:>10}", "sampler", "quality%");
    let mut biased = InvertedBirthdayParadox::new(FixedHopSampler::new(25));
    let (q, _, _) = stats_of(&mut biased, &graph, 200, derive_seed(BENCH_SEED, 31));
    println!("{:<22} {q:>10.1}", "fixed-hop (biased)");
    let mut fair = InvertedBirthdayParadox::new(RandomWalkSampler::paper());
    let (q, _, _) = stats_of(&mut fair, &graph, 200, derive_seed(BENCH_SEED, 32));
    println!("{:<22} {q:>10.1}", "ctrw (unbiased)");

    c.bench_function("baseline_birthday/ctrw_first_collision_5k", |b| {
        let mut est = InvertedBirthdayParadox::new(RandomWalkSampler::paper());
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(est.estimate(&graph, &mut rng, &mut msgs)));
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = random_tour, gossip_sample, biased_birthday
}
criterion_main!(benches);
