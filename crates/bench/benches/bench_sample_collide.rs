//! Sample&Collide benches — regenerates Figs 1, 2, 9, 10, 11 and 18, and
//! times single estimations at both `l` operating points.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{bench_scale, criterion_config, emit_figure, BENCH_SEED};
use p2p_estimation::{SampleCollide, SizeEstimator};
use p2p_experiments::figures;
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
use p2p_sim::rng::small_rng;
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn regenerate_figures(c: &mut Criterion) {
    let scale = bench_scale();
    for n in [1u32, 2, 9, 10, 11, 18] {
        let fig = figures::by_number(n, &scale, BENCH_SEED).expect("known figure");
        emit_figure(&fig);
    }
    // Keep criterion happy with at least one timed body in this group:
    // figure 18's primitive, the cheap l=10 estimation.
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    c.bench_function("fig18/sample_collide_l10_estimate_10k", |b| {
        let mut sc = SampleCollide::cheap();
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            let est = sc.estimate(black_box(&graph), &mut rng, &mut msgs);
            black_box(est)
        });
    });
}

fn estimation_cost(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    let mut group = c.benchmark_group("sample_collide");
    for l in [10u32, 200] {
        group.bench_function(format!("estimate_l{l}_10k"), |b| {
            let mut sc = SampleCollide::with_config(
                p2p_estimation::sample_collide::SampleCollideConfig::paper().with_l(l),
            );
            let mut msgs = MessageCounter::new();
            b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = regenerate_figures, estimation_cost
}
criterion_main!(benches);
