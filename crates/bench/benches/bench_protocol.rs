//! Unified-driver benches — times the protocol-generic `run_scenario` for
//! all three algorithm classes on the same dynamic scenario, and the
//! parallel replication sweep, so regressions in the shared driver (not just
//! in the per-algorithm primitives) show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{criterion_config, BENCH_SEED};
use p2p_estimation::aggregation::{AggregationConfig, EpochedAggregation};
use p2p_estimation::{Heuristic, HopsSampling, SampleCollide};
use p2p_experiments::runner::{run_replications, run_scenario};
use p2p_experiments::Scenario;
use std::hint::black_box;

fn scenario_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_scenario");
    group.bench_function("sample_collide_catastrophic_2k_x20", |b| {
        let scenario = Scenario::catastrophic(2_000, 20);
        b.iter(|| {
            let mut sc = SampleCollide::cheap();
            black_box(run_scenario(
                &mut sc,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "sc",
            ))
        });
    });
    group.bench_function("hops_sampling_catastrophic_2k_x20", |b| {
        let scenario = Scenario::catastrophic(2_000, 20);
        b.iter(|| {
            let mut hs = HopsSampling::paper();
            black_box(run_scenario(
                &mut hs,
                &scenario,
                Heuristic::last10(),
                BENCH_SEED,
                "hs",
            ))
        });
    });
    group.bench_function("epoched_aggregation_catastrophic_2k_x100", |b| {
        let scenario = Scenario::catastrophic(2_000, 100);
        b.iter(|| {
            let mut agg = EpochedAggregation::new(AggregationConfig::paper());
            black_box(run_scenario(
                &mut agg,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "agg",
            ))
        });
    });
    group.finish();
}

fn replication_sweep(c: &mut Criterion) {
    c.bench_function("run_replications/sample_collide_8x_static_2k", |b| {
        let scenario = Scenario::static_network(2_000, 10);
        b.iter(|| {
            black_box(run_replications(
                |_| SampleCollide::cheap(),
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                8,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = scenario_driver, replication_sweep
}
criterion_main!(benches);
