//! Unified-driver benches — times the protocol-generic `run_scenario` for
//! all three algorithm classes on the same dynamic scenario, the parallel
//! replication sweep, and the message-level DES path under a nonzero-latency
//! lossy network, so regressions in the shared drivers (not just in the
//! per-algorithm primitives) show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{criterion_config, BENCH_SEED};
use p2p_estimation::aggregation::{AggregationConfig, EpochedAggregation};
use p2p_estimation::{
    AsyncAggregation, AsyncHopsSampling, AsyncSampleCollide, Heuristic, HopsSampling, SampleCollide,
};
use p2p_experiments::runner::{run_replications, run_scenario, run_scenario_des};
use p2p_experiments::Scenario;
use p2p_sim::{HopLatency, NetworkModel};
use std::hint::black_box;

fn scenario_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_scenario");
    group.bench_function("sample_collide_catastrophic_2k_x20", |b| {
        let scenario = Scenario::catastrophic(2_000, 20);
        b.iter(|| {
            let mut sc = SampleCollide::cheap();
            black_box(run_scenario(
                &mut sc,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "sc",
            ))
        });
    });
    group.bench_function("hops_sampling_catastrophic_2k_x20", |b| {
        let scenario = Scenario::catastrophic(2_000, 20);
        b.iter(|| {
            let mut hs = HopsSampling::paper();
            black_box(run_scenario(
                &mut hs,
                &scenario,
                Heuristic::last10(),
                BENCH_SEED,
                "hs",
            ))
        });
    });
    group.bench_function("epoched_aggregation_catastrophic_2k_x100", |b| {
        let scenario = Scenario::catastrophic(2_000, 100);
        b.iter(|| {
            let mut agg = EpochedAggregation::new(AggregationConfig::paper());
            black_box(run_scenario(
                &mut agg,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "agg",
            ))
        });
    });
    group.finish();
}

fn replication_sweep(c: &mut Criterion) {
    c.bench_function("run_replications/sample_collide_8x_static_2k", |b| {
        let scenario = Scenario::static_network(2_000, 10);
        b.iter(|| {
            black_box(run_replications(
                |_| SampleCollide::cheap(),
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                8,
            ))
        });
    });
}

/// The message-level path under real latency, heterogeneity and loss — the
/// configuration CI's bench smoke exercises so the DES path cannot rot.
fn des_network_driver(c: &mut Criterion) {
    let model = NetworkModel::ideal()
        .with_latency(HopLatency::Uniform { lo: 5.0, hi: 60.0 })
        .with_link_spread(0.25)
        .with_drop_rate(0.01)
        .with_step_ticks(1_000);
    let mut group = c.benchmark_group("run_scenario_des");
    group.bench_function("async_sample_collide_wan_1k_x10", |b| {
        let scenario = Scenario::growing(1_000, 10, 0.5).with_network(model);
        b.iter(|| {
            let mut p = AsyncSampleCollide::cheap().with_timeout(50);
            black_box(run_scenario_des(
                &mut p,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "sc",
            ))
        });
    });
    group.bench_function("async_hops_sampling_wan_1k_x10", |b| {
        let scenario = Scenario::growing(1_000, 10, 0.5).with_network(model);
        b.iter(|| {
            let mut p = AsyncHopsSampling::paper();
            black_box(run_scenario_des(
                &mut p,
                &scenario,
                Heuristic::last10(),
                BENCH_SEED,
                "hs",
            ))
        });
    });
    group.bench_function("async_aggregation_wan_1k_x50", |b| {
        let scenario = Scenario::growing(1_000, 50, 0.5).with_network(model);
        b.iter(|| {
            let mut p = AsyncAggregation::new(AggregationConfig {
                rounds_per_estimate: 25,
            });
            black_box(run_scenario_des(
                &mut p,
                &scenario,
                Heuristic::OneShot,
                BENCH_SEED,
                "agg",
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = scenario_driver, replication_sweep, des_network_driver
}
criterion_main!(benches);
