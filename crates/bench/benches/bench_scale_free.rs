//! Scale-free topology benches — regenerates Figs 7 and 8, and times the
//! Barabási–Albert construction.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{bench_scale, criterion_config, emit_figure, BENCH_SEED};
use p2p_estimation::{SampleCollide, SizeEstimator};
use p2p_overlay::builder::{BarabasiAlbert, GraphBuilder};
use p2p_sim::rng::small_rng;
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn regenerate_figures(c: &mut Criterion) {
    let scale = bench_scale();
    for n in [7u32, 8] {
        let fig = p2p_experiments::figures::by_number(n, &scale, BENCH_SEED).expect("known figure");
        emit_figure(&fig);
    }
    let mut rng = small_rng(BENCH_SEED);
    let graph = BarabasiAlbert::paper(10_000).build(&mut rng);
    c.bench_function("fig08/sample_collide_on_scale_free_10k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
    });
}

fn build_cost(c: &mut Criterion) {
    c.bench_function("scale_free/barabasi_albert_build_10k", |b| {
        let mut rng = small_rng(BENCH_SEED);
        b.iter(|| black_box(BarabasiAlbert::paper(10_000).build(&mut rng)));
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = regenerate_figures, build_cost
}
criterion_main!(benches);
