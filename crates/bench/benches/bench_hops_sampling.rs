//! HopsSampling benches — regenerates Figs 3, 4, 12, 13, 14, and times the
//! spread and full estimation primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{bench_scale, criterion_config, emit_figure, BENCH_SEED};
use p2p_estimation::hops_sampling::{gossip_spread, HopsSamplingConfig};
use p2p_estimation::{HopsSampling, SizeEstimator};
use p2p_experiments::figures;
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
use p2p_sim::rng::small_rng;
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn regenerate_figures(c: &mut Criterion) {
    let scale = bench_scale();
    for n in [3u32, 4, 12, 13, 14] {
        let fig = figures::by_number(n, &scale, BENCH_SEED).expect("known figure");
        emit_figure(&fig);
    }
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    c.bench_function("fig03/hops_sampling_estimate_10k", |b| {
        let mut hs = HopsSampling::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(hs.estimate(&graph, &mut rng, &mut msgs)));
    });
}

fn spread_cost(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    let cfg = HopsSamplingConfig::paper();
    c.bench_function("hops_sampling/spread_only_10k", |b| {
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(gossip_spread(&graph, init, &cfg, &mut rng, &mut msgs))
        });
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = regenerate_figures, spread_cost
}
criterion_main!(benches);
