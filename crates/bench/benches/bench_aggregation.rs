//! Aggregation benches — regenerates Figs 5, 6, 15, 16, 17, and times
//! single push-pull rounds and whole 50-round estimations.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{bench_scale, criterion_config, emit_figure, BENCH_SEED};
use p2p_estimation::aggregation::{Aggregation, AveragingRun};
use p2p_experiments::figures;
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom};
use p2p_sim::rng::small_rng;
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn regenerate_figures(c: &mut Criterion) {
    let scale = bench_scale();
    for n in [5u32, 6, 15, 16, 17] {
        let fig = figures::by_number(n, &scale, BENCH_SEED).expect("known figure");
        emit_figure(&fig);
    }
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(2_000).build(&mut rng);
    c.bench_function("fig05/aggregation_estimate_50rounds_2k", |b| {
        let agg = Aggregation::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(agg.estimate_from(&graph, init, &mut rng, &mut msgs))
        });
    });
}

fn round_cost(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(10_000).build(&mut rng);
    c.bench_function("aggregation/push_pull_round_10k", |b| {
        let init = graph.random_alive(&mut rng).unwrap();
        let mut run = AveragingRun::new(&graph, init);
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            run.run_round(&graph, &mut rng, &mut msgs);
            black_box(run.rounds_run())
        });
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = regenerate_figures, round_cost
}
criterion_main!(benches);
