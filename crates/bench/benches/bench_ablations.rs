//! Ablation benches for the design choices the paper calls out (§V).
//!
//! Each group prints a small measurement table (the ablation result) and
//! times a representative operation so regressions surface in criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{criterion_config, BENCH_SEED};
use p2p_estimation::hops_sampling::{gossip_spread, HopsSamplingConfig};
use p2p_estimation::sample_collide::{CollisionEstimator, SampleCollideConfig};
use p2p_estimation::sampling::{OracleSampler, PeerSampler, RandomWalkSampler};
use p2p_estimation::{HopsSampling, SampleCollide, SizeEstimator};
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom, HomogeneousRandom};
use p2p_overlay::Graph;
use p2p_sim::rng::{derive_seed, small_rng};
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn mean_abs_err_and_cost<E: SizeEstimator>(
    est: &mut E,
    graph: &Graph,
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = small_rng(seed);
    let mut msgs = MessageCounter::new();
    let truth = graph.alive_count() as f64;
    let mut err = 0.0;
    for _ in 0..runs {
        let e = est
            .estimate(graph, &mut rng, &mut msgs)
            .expect("static overlay");
        err += (e - truth).abs() / truth;
    }
    (100.0 * err / runs as f64, msgs.total() as f64 / runs as f64)
}

/// §IV-E / §V(m): the accuracy-vs-cost knob `l`. The paper reports cost
/// ratios l=100 / l=10 ≈ 3.27 and l=200 / l=100 ≈ 1.40 (theory: √l scaling).
fn l_sweep(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] Sample&Collide l sweep on 20k nodes (15 runs each)");
    println!(
        "{:>6} {:>10} {:>14} {:>12}",
        "l", "|err| %", "msgs/est", "ratio"
    );
    let mut prev_cost = None;
    for l in [10u32, 50, 100, 200] {
        let mut sc = SampleCollide::with_config(SampleCollideConfig::paper().with_l(l));
        let (err, cost) =
            mean_abs_err_and_cost(&mut sc, &graph, 15, derive_seed(BENCH_SEED, l as u64));
        let ratio = prev_cost.map(|p: f64| cost / p).unwrap_or(f64::NAN);
        println!("{l:>6} {err:>10.2} {cost:>14.0} {ratio:>12.2}");
        prev_cost = Some(cost);
    }
    let mut group = c.benchmark_group("ablation_l_sweep");
    for l in [10u32, 200] {
        group.bench_function(format!("l{l}_20k"), |b| {
            let mut sc = SampleCollide::with_config(SampleCollideConfig::paper().with_l(l));
            let mut msgs = MessageCounter::new();
            b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
        });
    }
    group.finish();
}

/// §III-A: sampling bias versus the walk budget `T` — total-variation
/// distance of the sampled distribution from uniform, against the oracle's
/// sampling-noise floor.
fn t_bias(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 2));
    let graph = HeterogeneousRandom::paper(500).build(&mut rng);
    let draws = 100_000usize;
    let tv = |sampler: &dyn PeerSampler, rng: &mut rand::rngs::SmallRng| -> f64 {
        let mut msgs = MessageCounter::new();
        let init = graph.random_alive(rng).unwrap();
        let mut counts = vec![0u32; graph.num_slots()];
        for _ in 0..draws {
            let s = sampler.sample(&graph, init, rng, &mut msgs).unwrap();
            counts[s.index()] += 1;
        }
        let unif = draws as f64 / graph.alive_count() as f64;
        0.5 * counts.iter().map(|&c| (c as f64 - unif).abs()).sum::<f64>() / draws as f64
    };
    println!("\n[ablation] CTRW sampling bias vs walk budget T (500 nodes, 100k draws)");
    println!("{:>8} {:>10}", "T", "TV dist");
    for t in [0.5f64, 1.0, 2.0, 5.0, 10.0] {
        let d = tv(&RandomWalkSampler::new(t), &mut rng);
        println!("{t:>8.1} {d:>10.4}");
    }
    let floor = tv(&OracleSampler, &mut rng);
    println!("{:>8} {floor:>10.4}", "oracle");

    c.bench_function("ablation_t_bias/ctrw_sample_t10_500", |b| {
        let s = RandomWalkSampler::paper();
        let mut msgs = MessageCounter::new();
        let init = graph.random_alive(&mut rng).unwrap();
        b.iter(|| black_box(s.sample(&graph, init, &mut rng, &mut msgs)));
    });
}

/// §IV-A: homogeneous vs heterogeneous degree — "This parameter consistently
/// improved all algorithms. Therefore, we chose the worst case setting."
///
/// Degree structure only reaches the algorithms through the overlay, so
/// HopsSampling runs in neighbor-target mode here (membership-mode gossip
/// never looks at overlay degrees). Sample&Collide's CTRW sampler is
/// degree-corrected by design, so its rows should be statistically equal —
/// that insensitivity *is* the result.
fn topology(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 3));
    let hetero = HeterogeneousRandom::paper(10_000).build(&mut rng);
    let homo = HomogeneousRandom::new(10_000, 7).build(&mut rng);
    println!("\n[ablation] topology: heterogeneous (max 10) vs homogeneous (k=7), 10k nodes");
    println!(
        "{:<24} {:>14} {:>12}",
        "algorithm", "hetero |err|%", "homo |err|%"
    );
    let mut sc = SampleCollide::paper();
    let (e_het, _) = mean_abs_err_and_cost(&mut sc, &hetero, 12, derive_seed(BENCH_SEED, 31));
    let (e_hom, _) = mean_abs_err_and_cost(&mut sc, &homo, 12, derive_seed(BENCH_SEED, 32));
    println!("{:<24} {e_het:>14.2} {e_hom:>12.2}", "Sample&Collide");
    let mut hs = HopsSampling {
        config: HopsSamplingConfig::paper().with_neighbor_targets(),
    };
    let (e_het, _) = mean_abs_err_and_cost(&mut hs, &hetero, 12, derive_seed(BENCH_SEED, 33));
    let (e_hom, _) = mean_abs_err_and_cost(&mut hs, &homo, 12, derive_seed(BENCH_SEED, 34));
    println!(
        "{:<24} {e_het:>14.2} {e_hom:>12.2}",
        "HopsSampling (neighbor)"
    );

    c.bench_function("ablation_topology/sc_estimate_homogeneous_10k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&homo, &mut rng, &mut msgs)));
    });
}

/// Moment (`C(C−1)/2l`) vs likelihood-inversion estimator: the moment form's
/// +C/2N bias explodes as the overlay shrinks relative to `l`.
fn estimator(c: &mut Criterion) {
    println!("\n[ablation] collision estimator bias (l=200, 12 runs, signed mean err %)");
    println!("{:>8} {:>10} {:>10}", "N", "moment", "mle");
    for n in [1_000usize, 5_000, 20_000] {
        let mut rng = small_rng(derive_seed(BENCH_SEED, 4 + n as u64));
        let graph = HeterogeneousRandom::paper(n).build(&mut rng);
        let signed = |kind: CollisionEstimator, rng: &mut rand::rngs::SmallRng| -> f64 {
            let mut cfg = SampleCollideConfig::paper();
            cfg.estimator = kind;
            let sc = SampleCollide::with_config(cfg);
            let mut msgs = MessageCounter::new();
            let mut sum = 0.0;
            for _ in 0..12 {
                let init = graph.random_alive(rng).unwrap();
                sum += sc.estimate_from(&graph, init, rng, &mut msgs).unwrap();
            }
            100.0 * (sum / 12.0 - n as f64) / n as f64
        };
        let m = signed(CollisionEstimator::Moment, &mut rng);
        let mle = signed(CollisionEstimator::MaximumLikelihood, &mut rng);
        println!("{n:>8} {m:>10.2} {mle:>10.2}");
    }

    let mut rng = small_rng(derive_seed(BENCH_SEED, 5));
    let graph = HeterogeneousRandom::paper(5_000).build(&mut rng);
    c.bench_function("ablation_estimator/mle_estimate_5k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
    });
}

/// §V(m): lowering `minHopsReporting` "does not significantly reduce the
/// overhead, while degrading accuracy".
fn min_hops(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 6));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] HopsSampling minHopsReporting sweep (20k nodes, 12 runs)");
    println!("{:>6} {:>10} {:>14}", "m", "|err| %", "msgs/est");
    for m in [2u32, 5, 8] {
        let mut hs = HopsSampling {
            config: HopsSamplingConfig::paper().with_min_hops(m),
        };
        let (err, cost) =
            mean_abs_err_and_cost(&mut hs, &graph, 12, derive_seed(BENCH_SEED, 60 + m as u64));
        println!("{m:>6} {err:>10.2} {cost:>14.0}");
    }
    c.bench_function("ablation_min_hops/hs_estimate_m2_20k", |b| {
        let mut hs = HopsSampling {
            config: HopsSamplingConfig::paper().with_min_hops(2),
        };
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(hs.estimate(&graph, &mut rng, &mut msgs)));
    });
}

/// Membership-substrate vs overlay-neighbor gossip targets: coverage and
/// worst believed distance (our resolution of the \[17\] gossip semantics).
fn hs_target_mode(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 7));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] HopsSampling gossip target mode (20k nodes, 10 spreads)");
    println!("{:<12} {:>10} {:>12}", "mode", "reach", "max dist");
    for (name, cfg) in [
        ("membership", HopsSamplingConfig::paper()),
        (
            "neighbors",
            HopsSamplingConfig::paper().with_neighbor_targets(),
        ),
    ] {
        let mut msgs = MessageCounter::new();
        let (mut reach, mut maxd) = (0.0, 0u32);
        for _ in 0..10 {
            let init = graph.random_alive(&mut rng).unwrap();
            let out = gossip_spread(&graph, init, &cfg, &mut rng, &mut msgs);
            reach += out.reach_fraction(&graph) / 10.0;
            maxd = maxd.max(
                out.min_hops
                    .iter()
                    .copied()
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        println!("{name:<12} {reach:>10.3} {maxd:>12}");
    }
    c.bench_function("ablation_target_mode/neighbor_spread_20k", |b| {
        let cfg = HopsSamplingConfig::paper().with_neighbor_targets();
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(gossip_spread(&graph, init, &cfg, &mut rng, &mut msgs))
        });
    });
}

/// §V(o): with oracle BFS distances the poll is unbiased — the paper's
/// control experiment isolating where HopsSampling's bias comes from.
fn oracle_distances(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 8));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    let hs = HopsSampling::paper();
    let mut msgs = MessageCounter::new();
    let (mut gossip_sum, mut oracle_sum) = (0.0, 0.0);
    let runs = 10;
    for _ in 0..runs {
        let init = graph.random_alive(&mut rng).unwrap();
        gossip_sum += hs.estimate_from(&graph, init, &mut rng, &mut msgs).unwrap();
        oracle_sum += hs
            .estimate_with_oracle_distances(&graph, init, &mut rng, &mut msgs)
            .unwrap();
    }
    println!("\n[ablation] HopsSampling distance source (20k nodes, {runs} runs)");
    println!(
        "  gossip distances: mean quality {:.1}%",
        100.0 * gossip_sum / runs as f64 / 20_000.0
    );
    println!(
        "  oracle distances: mean quality {:.1}%",
        100.0 * oracle_sum / runs as f64 / 20_000.0
    );

    c.bench_function("ablation_oracle_distances/bfs_poll_20k", |b| {
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(hs.estimate_with_oracle_distances(&graph, init, &mut rng, &mut msgs))
        });
    });
}

/// §V(p)/§VI extension: end-to-end estimation delay under a per-hop latency
/// model — the comparison the paper conjectures but could not measure.
fn delay(c: &mut Criterion) {
    use p2p_experiments::delay::compare_delays;
    use p2p_sim::latency::HopLatency;

    let mut rng = small_rng(derive_seed(BENCH_SEED, 9));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    let reports = compare_delays(&graph, HopLatency::wan(), 3, derive_seed(BENCH_SEED, 91));
    println!("\n[extension] estimation delay, uniform 20-200ms hops, 20k nodes");
    println!("{:<28} {:>12} {:>12}", "algorithm", "mean ms", "max ms");
    for r in &reports {
        println!("{:<28} {:>12.0} {:>12.0}", r.algorithm, r.mean_ms, r.max_ms);
    }

    c.bench_function("extension_delay/hops_sampling_delay_20k", |b| {
        let cfg = p2p_estimation::hops_sampling::HopsSamplingConfig::paper();
        b.iter(|| {
            black_box(p2p_experiments::delay::hops_sampling_delay(
                &graph,
                &cfg,
                HopLatency::wan(),
                &mut rng,
            ))
        });
    });
}

/// Churn hot path: per-removal allocation (`remove_node` returning a fresh
/// `Vec`) vs one reused scratch buffer (`remove_node_with`). The scratch
/// variant is what `churn::remove_random_nodes` — and therefore every
/// catastrophe and shrinking scenario — runs on.
fn churn_removal(c: &mut Criterion) {
    use p2p_overlay::churn;
    use std::time::Instant;

    let n = 50_000;
    let victims = 40_000;
    let mut rng = small_rng(derive_seed(BENCH_SEED, 10));
    println!("\n[ablation] node removal on a {n}-node overlay ({victims} removals)");
    println!("{:<28} {:>14}", "variant", "ns/removal");
    let mut per_removal = [0.0f64; 2];
    for (slot, (name, use_scratch)) in [
        ("alloc (remove_node)", false),
        ("scratch (remove_node_with)", true),
    ]
    .into_iter()
    .enumerate()
    {
        let mut g = HeterogeneousRandom::paper(n).build(&mut rng);
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        for _ in 0..victims {
            let v = g.random_alive(&mut rng).expect("victims < n");
            if use_scratch {
                black_box(g.remove_node_with(v, &mut scratch));
            } else {
                black_box(g.remove_node(v));
            }
        }
        per_removal[slot] = t0.elapsed().as_nanos() as f64 / victims as f64;
        println!("{name:<28} {:>14.1}", per_removal[slot]);
    }
    println!(
        "  scratch/alloc ratio: {:.2}",
        per_removal[1] / per_removal[0]
    );

    c.bench_function("ablation_churn/steady_churn_500_of_20k", |b| {
        let mut g = HeterogeneousRandom::paper(20_000).build(&mut rng);
        b.iter(|| {
            // Stable-size churn cycle on a persistent overlay: the removal
            // half runs the scratch-buffer hot path.
            churn::remove_random_nodes(&mut g, 500, &mut rng);
            churn::join_nodes(&mut g, 500, 10, &mut rng);
            black_box(g.alive_count())
        });
    });
}

/// Schedule lookup: the historic `ops_at` filtered the whole churn
/// schedule per query, so a growing/shrinking scenario (one entry per
/// timeline step) paid O(steps) per step — O(steps²) per run. The sorted
/// `partition_point` range lookup is what `Scenario::ops_at` ships now.
fn ops_at_lookup(c: &mut Criterion) {
    use p2p_experiments::Scenario;
    use std::time::Instant;

    let steps = 10_000u64;
    let scenario = Scenario::growing(100_000, steps, 0.5);
    println!(
        "\n[ablation] ops_at over a {}-entry growing schedule, {steps} queries",
        scenario.schedule.len()
    );
    println!("{:<28} {:>14}", "variant", "ns/query");
    let mut per_query = [0.0f64; 2];
    for (slot, name) in ["linear filter scan", "partition_point range"]
        .into_iter()
        .enumerate()
    {
        let t0 = Instant::now();
        let mut hits = 0usize;
        for step in 0..=steps {
            if slot == 0 {
                hits += scenario
                    .schedule
                    .iter()
                    .filter(|&&(s, _)| s == step)
                    .count();
            } else {
                hits += scenario.ops_at(step).count();
            }
        }
        per_query[slot] = t0.elapsed().as_nanos() as f64 / (steps + 1) as f64;
        println!("{name:<28} {:>14.1}   ({hits} ops seen)", per_query[slot]);
    }
    println!("  range/linear ratio: {:.4}", per_query[1] / per_query[0]);

    c.bench_function("ablation_ops_at/range_lookup_10k_steps", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for step in 0..=steps {
                hits += scenario.ops_at(black_box(step)).count();
            }
            black_box(hits)
        });
    });
}

/// Workload subsystem: churn-op *generation* throughput at 100k nodes —
/// the cost of streaming heavy-tailed session churn (heap-fed targeted
/// departures + Poisson arrivals) per timeline step, measured both
/// generation-only and with application to the live overlay.
fn workload_generation(c: &mut Criterion) {
    use p2p_overlay::churn::ChurnDelta;
    use p2p_workload::WorkloadSpec;
    use std::time::Instant;

    let n = 100_000;
    let warm_steps = 100u64;
    let timed_steps = 200u64;
    let mut apply_rng = small_rng(derive_seed(BENCH_SEED, 11));
    let mut wl_rng = small_rng(derive_seed(BENCH_SEED, 12));
    let mut g = HeterogeneousRandom::paper(n).build(&mut apply_rng);
    // Mean session of 500 steps on 100k nodes → ~200 joins + ~200 targeted
    // departures per step at equilibrium.
    let spec = WorkloadSpec::parse("pareto:alpha=1.5,mean=500").unwrap();
    let mut model = spec.build(10);
    model.on_init(&g, &mut wl_rng);

    let mut ops = Vec::new();
    let mut delta = ChurnDelta::default();
    let mut step = 0u64;
    let mut drive = |steps: u64,
                     g: &mut p2p_overlay::Graph,
                     apply_rng: &mut rand::rngs::SmallRng,
                     wl_rng: &mut rand::rngs::SmallRng|
     -> usize {
        let mut events = 0usize;
        for _ in 0..steps {
            step += 1;
            ops.clear();
            model.ops_at(step, g, wl_rng, &mut ops);
            delta.clear();
            for op in &ops {
                op.apply(g, apply_rng, &mut delta);
            }
            events += delta.joined.len() + delta.left.len();
            model.observe(step, &delta, wl_rng);
        }
        events
    };

    drive(warm_steps, &mut g, &mut apply_rng, &mut wl_rng);
    let t0 = Instant::now();
    let events = drive(timed_steps, &mut g, &mut apply_rng, &mut wl_rng);
    let elapsed = t0.elapsed();
    println!("\n[ablation] workload generation: pareto sessions on a {n}-node overlay");
    println!(
        "  {timed_steps} steps, {events} node events in {elapsed:.1?} \
         ({:.1} µs/step, {:.2} Mevents/s)",
        elapsed.as_micros() as f64 / timed_steps as f64,
        events as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("  population after churn: {}", g.alive_count());

    c.bench_function("ablation_workload/session_churn_step_100k", |b| {
        b.iter(|| {
            black_box(drive(1, &mut g, &mut apply_rng, &mut wl_rng));
        });
    });
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = l_sweep, t_bias, topology, estimator, min_hops, hs_target_mode, oracle_distances,
        delay, churn_removal, ops_at_lookup, workload_generation
}
criterion_main!(benches);
