//! Ablation benches for the design choices the paper calls out (§V).
//!
//! Each group prints a small measurement table (the ablation result) and
//! times a representative operation so regressions surface in criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::{criterion_config, BENCH_SEED};
use p2p_estimation::hops_sampling::{gossip_spread, HopsSamplingConfig};
use p2p_estimation::sample_collide::{CollisionEstimator, SampleCollideConfig};
use p2p_estimation::sampling::{OracleSampler, PeerSampler, RandomWalkSampler};
use p2p_estimation::{HopsSampling, SampleCollide, SizeEstimator};
use p2p_overlay::builder::{GraphBuilder, HeterogeneousRandom, HomogeneousRandom};
use p2p_overlay::Graph;
use p2p_sim::rng::{derive_seed, small_rng};
use p2p_sim::MessageCounter;
use std::hint::black_box;

fn mean_abs_err_and_cost<E: SizeEstimator>(
    est: &mut E,
    graph: &Graph,
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = small_rng(seed);
    let mut msgs = MessageCounter::new();
    let truth = graph.alive_count() as f64;
    let mut err = 0.0;
    for _ in 0..runs {
        let e = est
            .estimate(graph, &mut rng, &mut msgs)
            .expect("static overlay");
        err += (e - truth).abs() / truth;
    }
    (100.0 * err / runs as f64, msgs.total() as f64 / runs as f64)
}

/// §IV-E / §V(m): the accuracy-vs-cost knob `l`. The paper reports cost
/// ratios l=100 / l=10 ≈ 3.27 and l=200 / l=100 ≈ 1.40 (theory: √l scaling).
fn l_sweep(c: &mut Criterion) {
    let mut rng = small_rng(BENCH_SEED);
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] Sample&Collide l sweep on 20k nodes (15 runs each)");
    println!(
        "{:>6} {:>10} {:>14} {:>12}",
        "l", "|err| %", "msgs/est", "ratio"
    );
    let mut prev_cost = None;
    for l in [10u32, 50, 100, 200] {
        let mut sc = SampleCollide::with_config(SampleCollideConfig::paper().with_l(l));
        let (err, cost) =
            mean_abs_err_and_cost(&mut sc, &graph, 15, derive_seed(BENCH_SEED, l as u64));
        let ratio = prev_cost.map(|p: f64| cost / p).unwrap_or(f64::NAN);
        println!("{l:>6} {err:>10.2} {cost:>14.0} {ratio:>12.2}");
        prev_cost = Some(cost);
    }
    let mut group = c.benchmark_group("ablation_l_sweep");
    for l in [10u32, 200] {
        group.bench_function(format!("l{l}_20k"), |b| {
            let mut sc = SampleCollide::with_config(SampleCollideConfig::paper().with_l(l));
            let mut msgs = MessageCounter::new();
            b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
        });
    }
    group.finish();
}

/// §III-A: sampling bias versus the walk budget `T` — total-variation
/// distance of the sampled distribution from uniform, against the oracle's
/// sampling-noise floor.
fn t_bias(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 2));
    let graph = HeterogeneousRandom::paper(500).build(&mut rng);
    let draws = 100_000usize;
    let tv = |sampler: &dyn PeerSampler, rng: &mut rand::rngs::SmallRng| -> f64 {
        let mut msgs = MessageCounter::new();
        let init = graph.random_alive(rng).unwrap();
        let mut counts = vec![0u32; graph.num_slots()];
        for _ in 0..draws {
            let s = sampler.sample(&graph, init, rng, &mut msgs).unwrap();
            counts[s.index()] += 1;
        }
        let unif = draws as f64 / graph.alive_count() as f64;
        0.5 * counts.iter().map(|&c| (c as f64 - unif).abs()).sum::<f64>() / draws as f64
    };
    println!("\n[ablation] CTRW sampling bias vs walk budget T (500 nodes, 100k draws)");
    println!("{:>8} {:>10}", "T", "TV dist");
    for t in [0.5f64, 1.0, 2.0, 5.0, 10.0] {
        let d = tv(&RandomWalkSampler::new(t), &mut rng);
        println!("{t:>8.1} {d:>10.4}");
    }
    let floor = tv(&OracleSampler, &mut rng);
    println!("{:>8} {floor:>10.4}", "oracle");

    c.bench_function("ablation_t_bias/ctrw_sample_t10_500", |b| {
        let s = RandomWalkSampler::paper();
        let mut msgs = MessageCounter::new();
        let init = graph.random_alive(&mut rng).unwrap();
        b.iter(|| black_box(s.sample(&graph, init, &mut rng, &mut msgs)));
    });
}

/// §IV-A: homogeneous vs heterogeneous degree — "This parameter consistently
/// improved all algorithms. Therefore, we chose the worst case setting."
///
/// Degree structure only reaches the algorithms through the overlay, so
/// HopsSampling runs in neighbor-target mode here (membership-mode gossip
/// never looks at overlay degrees). Sample&Collide's CTRW sampler is
/// degree-corrected by design, so its rows should be statistically equal —
/// that insensitivity *is* the result.
fn topology(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 3));
    let hetero = HeterogeneousRandom::paper(10_000).build(&mut rng);
    let homo = HomogeneousRandom::new(10_000, 7).build(&mut rng);
    println!("\n[ablation] topology: heterogeneous (max 10) vs homogeneous (k=7), 10k nodes");
    println!(
        "{:<24} {:>14} {:>12}",
        "algorithm", "hetero |err|%", "homo |err|%"
    );
    let mut sc = SampleCollide::paper();
    let (e_het, _) = mean_abs_err_and_cost(&mut sc, &hetero, 12, derive_seed(BENCH_SEED, 31));
    let (e_hom, _) = mean_abs_err_and_cost(&mut sc, &homo, 12, derive_seed(BENCH_SEED, 32));
    println!("{:<24} {e_het:>14.2} {e_hom:>12.2}", "Sample&Collide");
    let mut hs = HopsSampling {
        config: HopsSamplingConfig::paper().with_neighbor_targets(),
    };
    let (e_het, _) = mean_abs_err_and_cost(&mut hs, &hetero, 12, derive_seed(BENCH_SEED, 33));
    let (e_hom, _) = mean_abs_err_and_cost(&mut hs, &homo, 12, derive_seed(BENCH_SEED, 34));
    println!(
        "{:<24} {e_het:>14.2} {e_hom:>12.2}",
        "HopsSampling (neighbor)"
    );

    c.bench_function("ablation_topology/sc_estimate_homogeneous_10k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&homo, &mut rng, &mut msgs)));
    });
}

/// Moment (`C(C−1)/2l`) vs likelihood-inversion estimator: the moment form's
/// +C/2N bias explodes as the overlay shrinks relative to `l`.
fn estimator(c: &mut Criterion) {
    println!("\n[ablation] collision estimator bias (l=200, 12 runs, signed mean err %)");
    println!("{:>8} {:>10} {:>10}", "N", "moment", "mle");
    for n in [1_000usize, 5_000, 20_000] {
        let mut rng = small_rng(derive_seed(BENCH_SEED, 4 + n as u64));
        let graph = HeterogeneousRandom::paper(n).build(&mut rng);
        let signed = |kind: CollisionEstimator, rng: &mut rand::rngs::SmallRng| -> f64 {
            let mut cfg = SampleCollideConfig::paper();
            cfg.estimator = kind;
            let sc = SampleCollide::with_config(cfg);
            let mut msgs = MessageCounter::new();
            let mut sum = 0.0;
            for _ in 0..12 {
                let init = graph.random_alive(rng).unwrap();
                sum += sc.estimate_from(&graph, init, rng, &mut msgs).unwrap();
            }
            100.0 * (sum / 12.0 - n as f64) / n as f64
        };
        let m = signed(CollisionEstimator::Moment, &mut rng);
        let mle = signed(CollisionEstimator::MaximumLikelihood, &mut rng);
        println!("{n:>8} {m:>10.2} {mle:>10.2}");
    }

    let mut rng = small_rng(derive_seed(BENCH_SEED, 5));
    let graph = HeterogeneousRandom::paper(5_000).build(&mut rng);
    c.bench_function("ablation_estimator/mle_estimate_5k", |b| {
        let mut sc = SampleCollide::paper();
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(sc.estimate(&graph, &mut rng, &mut msgs)));
    });
}

/// §V(m): lowering `minHopsReporting` "does not significantly reduce the
/// overhead, while degrading accuracy".
fn min_hops(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 6));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] HopsSampling minHopsReporting sweep (20k nodes, 12 runs)");
    println!("{:>6} {:>10} {:>14}", "m", "|err| %", "msgs/est");
    for m in [2u32, 5, 8] {
        let mut hs = HopsSampling {
            config: HopsSamplingConfig::paper().with_min_hops(m),
        };
        let (err, cost) =
            mean_abs_err_and_cost(&mut hs, &graph, 12, derive_seed(BENCH_SEED, 60 + m as u64));
        println!("{m:>6} {err:>10.2} {cost:>14.0}");
    }
    c.bench_function("ablation_min_hops/hs_estimate_m2_20k", |b| {
        let mut hs = HopsSampling {
            config: HopsSamplingConfig::paper().with_min_hops(2),
        };
        let mut msgs = MessageCounter::new();
        b.iter(|| black_box(hs.estimate(&graph, &mut rng, &mut msgs)));
    });
}

/// Membership-substrate vs overlay-neighbor gossip targets: coverage and
/// worst believed distance (our resolution of the \[17\] gossip semantics).
fn hs_target_mode(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 7));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    println!("\n[ablation] HopsSampling gossip target mode (20k nodes, 10 spreads)");
    println!("{:<12} {:>10} {:>12}", "mode", "reach", "max dist");
    for (name, cfg) in [
        ("membership", HopsSamplingConfig::paper()),
        (
            "neighbors",
            HopsSamplingConfig::paper().with_neighbor_targets(),
        ),
    ] {
        let mut msgs = MessageCounter::new();
        let (mut reach, mut maxd) = (0.0, 0u32);
        for _ in 0..10 {
            let init = graph.random_alive(&mut rng).unwrap();
            let out = gossip_spread(&graph, init, &cfg, &mut rng, &mut msgs);
            reach += out.reach_fraction(&graph) / 10.0;
            maxd = maxd.max(
                out.min_hops
                    .iter()
                    .copied()
                    .filter(|&d| d != u32::MAX)
                    .max()
                    .unwrap_or(0),
            );
        }
        println!("{name:<12} {reach:>10.3} {maxd:>12}");
    }
    c.bench_function("ablation_target_mode/neighbor_spread_20k", |b| {
        let cfg = HopsSamplingConfig::paper().with_neighbor_targets();
        let mut msgs = MessageCounter::new();
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(gossip_spread(&graph, init, &cfg, &mut rng, &mut msgs))
        });
    });
}

/// §V(o): with oracle BFS distances the poll is unbiased — the paper's
/// control experiment isolating where HopsSampling's bias comes from.
fn oracle_distances(c: &mut Criterion) {
    let mut rng = small_rng(derive_seed(BENCH_SEED, 8));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    let hs = HopsSampling::paper();
    let mut msgs = MessageCounter::new();
    let (mut gossip_sum, mut oracle_sum) = (0.0, 0.0);
    let runs = 10;
    for _ in 0..runs {
        let init = graph.random_alive(&mut rng).unwrap();
        gossip_sum += hs.estimate_from(&graph, init, &mut rng, &mut msgs).unwrap();
        oracle_sum += hs
            .estimate_with_oracle_distances(&graph, init, &mut rng, &mut msgs)
            .unwrap();
    }
    println!("\n[ablation] HopsSampling distance source (20k nodes, {runs} runs)");
    println!(
        "  gossip distances: mean quality {:.1}%",
        100.0 * gossip_sum / runs as f64 / 20_000.0
    );
    println!(
        "  oracle distances: mean quality {:.1}%",
        100.0 * oracle_sum / runs as f64 / 20_000.0
    );

    c.bench_function("ablation_oracle_distances/bfs_poll_20k", |b| {
        b.iter(|| {
            let init = graph.random_alive(&mut rng).unwrap();
            black_box(hs.estimate_with_oracle_distances(&graph, init, &mut rng, &mut msgs))
        });
    });
}

/// §V(p)/§VI extension: end-to-end estimation delay under a per-hop latency
/// model — the comparison the paper conjectures but could not measure.
fn delay(c: &mut Criterion) {
    use p2p_experiments::delay::compare_delays;
    use p2p_sim::latency::HopLatency;

    let mut rng = small_rng(derive_seed(BENCH_SEED, 9));
    let graph = HeterogeneousRandom::paper(20_000).build(&mut rng);
    let reports = compare_delays(&graph, HopLatency::wan(), 3, derive_seed(BENCH_SEED, 91));
    println!("\n[extension] estimation delay, uniform 20-200ms hops, 20k nodes");
    println!("{:<28} {:>12} {:>12}", "algorithm", "mean ms", "max ms");
    for r in &reports {
        println!("{:<28} {:>12.0} {:>12.0}", r.algorithm, r.mean_ms, r.max_ms);
    }

    c.bench_function("extension_delay/hops_sampling_delay_20k", |b| {
        let cfg = p2p_estimation::hops_sampling::HopsSamplingConfig::paper();
        b.iter(|| {
            black_box(p2p_experiments::delay::hops_sampling_delay(
                &graph,
                &cfg,
                HopLatency::wan(),
                &mut rng,
            ))
        });
    });
}

/// Churn hot path: per-removal allocation (`remove_node` returning a fresh
/// `Vec`) vs one reused scratch buffer (`remove_node_with`). The scratch
/// variant is what `churn::remove_random_nodes` — and therefore every
/// catastrophe and shrinking scenario — runs on.
fn churn_removal(c: &mut Criterion) {
    use p2p_overlay::churn;
    use std::time::Instant;

    let n = 50_000;
    let victims = 40_000;
    let mut rng = small_rng(derive_seed(BENCH_SEED, 10));
    println!("\n[ablation] node removal on a {n}-node overlay ({victims} removals)");
    println!("{:<28} {:>14}", "variant", "ns/removal");
    let mut per_removal = [0.0f64; 2];
    for (slot, (name, use_scratch)) in [
        ("alloc (remove_node)", false),
        ("scratch (remove_node_with)", true),
    ]
    .into_iter()
    .enumerate()
    {
        let mut g = HeterogeneousRandom::paper(n).build(&mut rng);
        let mut scratch = Vec::new();
        let t0 = Instant::now();
        for _ in 0..victims {
            let v = g.random_alive(&mut rng).expect("victims < n");
            if use_scratch {
                black_box(g.remove_node_with(v, &mut scratch));
            } else {
                black_box(g.remove_node(v));
            }
        }
        per_removal[slot] = t0.elapsed().as_nanos() as f64 / victims as f64;
        println!("{name:<28} {:>14.1}", per_removal[slot]);
    }
    println!(
        "  scratch/alloc ratio: {:.2}",
        per_removal[1] / per_removal[0]
    );

    c.bench_function("ablation_churn/steady_churn_500_of_20k", |b| {
        let mut g = HeterogeneousRandom::paper(20_000).build(&mut rng);
        b.iter(|| {
            // Stable-size churn cycle on a persistent overlay: the removal
            // half runs the scratch-buffer hot path.
            churn::remove_random_nodes(&mut g, 500, &mut rng);
            churn::join_nodes(&mut g, 500, 10, &mut rng);
            black_box(g.alive_count())
        });
    });
}

/// Schedule lookup: the historic `ops_at` filtered the whole churn
/// schedule per query, so a growing/shrinking scenario (one entry per
/// timeline step) paid O(steps) per step — O(steps²) per run. The sorted
/// `partition_point` range lookup is what `Scenario::ops_at` ships now.
fn ops_at_lookup(c: &mut Criterion) {
    use p2p_experiments::Scenario;
    use std::time::Instant;

    let steps = 10_000u64;
    let scenario = Scenario::growing(100_000, steps, 0.5);
    println!(
        "\n[ablation] ops_at over a {}-entry growing schedule, {steps} queries",
        scenario.schedule.len()
    );
    println!("{:<28} {:>14}", "variant", "ns/query");
    let mut per_query = [0.0f64; 2];
    for (slot, name) in ["linear filter scan", "partition_point range"]
        .into_iter()
        .enumerate()
    {
        let t0 = Instant::now();
        let mut hits = 0usize;
        for step in 0..=steps {
            if slot == 0 {
                hits += scenario
                    .schedule
                    .iter()
                    .filter(|&&(s, _)| s == step)
                    .count();
            } else {
                hits += scenario.ops_at(step).count();
            }
        }
        per_query[slot] = t0.elapsed().as_nanos() as f64 / (steps + 1) as f64;
        println!("{name:<28} {:>14.1}   ({hits} ops seen)", per_query[slot]);
    }
    println!("  range/linear ratio: {:.4}", per_query[1] / per_query[0]);

    c.bench_function("ablation_ops_at/range_lookup_10k_steps", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for step in 0..=steps {
                hits += scenario.ops_at(black_box(step)).count();
            }
            black_box(hits)
        });
    });
}

/// Workload subsystem: churn-op *generation* throughput at 100k nodes —
/// the cost of streaming heavy-tailed session churn (heap-fed targeted
/// departures + Poisson arrivals) per timeline step, measured both
/// generation-only and with application to the live overlay.
fn workload_generation(c: &mut Criterion) {
    use p2p_overlay::churn::ChurnDelta;
    use p2p_workload::WorkloadSpec;
    use std::time::Instant;

    let n = 100_000;
    let warm_steps = 100u64;
    let timed_steps = 200u64;
    let mut apply_rng = small_rng(derive_seed(BENCH_SEED, 11));
    let mut wl_rng = small_rng(derive_seed(BENCH_SEED, 12));
    let mut g = HeterogeneousRandom::paper(n).build(&mut apply_rng);
    // Mean session of 500 steps on 100k nodes → ~200 joins + ~200 targeted
    // departures per step at equilibrium.
    let spec = WorkloadSpec::parse("pareto:alpha=1.5,mean=500").unwrap();
    let mut model = spec.build(10);
    model.on_init(&g, &mut wl_rng);

    let mut ops = Vec::new();
    let mut delta = ChurnDelta::default();
    let mut scratch = Vec::new();
    let mut step = 0u64;
    let mut drive = |steps: u64,
                     g: &mut p2p_overlay::Graph,
                     apply_rng: &mut rand::rngs::SmallRng,
                     wl_rng: &mut rand::rngs::SmallRng|
     -> usize {
        let mut events = 0usize;
        for _ in 0..steps {
            step += 1;
            ops.clear();
            model.ops_at(step, g, wl_rng, &mut ops);
            delta.clear();
            for op in &ops {
                op.apply_with(g, apply_rng, &mut delta, &mut scratch);
            }
            events += delta.joined.len() + delta.left.len();
            model.observe(step, &delta, wl_rng);
        }
        events
    };

    drive(warm_steps, &mut g, &mut apply_rng, &mut wl_rng);
    let t0 = Instant::now();
    let events = drive(timed_steps, &mut g, &mut apply_rng, &mut wl_rng);
    let elapsed = t0.elapsed();
    println!("\n[ablation] workload generation: pareto sessions on a {n}-node overlay");
    println!(
        "  {timed_steps} steps, {events} node events in {elapsed:.1?} \
         ({:.1} µs/step, {:.2} Mevents/s)",
        elapsed.as_micros() as f64 / timed_steps as f64,
        events as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("  population after churn: {}", g.alive_count());

    c.bench_function("ablation_workload/session_churn_step_100k", |b| {
        b.iter(|| {
            black_box(drive(1, &mut g, &mut apply_rng, &mut wl_rng));
        });
    });
}

// ── PR 5 hot-path ablations ─────────────────────────────────────────────
//
// The three fns below measure the million-node event-core redesign in
// isolation (calendar queue vs binary heap, arena vs boxed per-node state,
// pooled vs allocated payloads) and feed their numbers into the
// `BENCH_5.json` snapshot written by `bench5_snapshot` (the last target).

/// Collected measurements for the BENCH_5.json snapshot.
static BENCH5: std::sync::Mutex<Vec<(String, String)>> = std::sync::Mutex::new(Vec::new());

fn bench5_record(key: &str, value: String) {
    BENCH5.lock().unwrap().push((key.to_string(), value));
}

/// The pre-PR5 event queue, verbatim: `BinaryHeap` with a monotone
/// sequence tie-break. Baseline for the `event_queue` ablation.
///
/// Deliberately a copy of `p2p_sim::engine::oracle::HeapEngine`: the
/// oracle is `#[cfg(test)]`-only by design (production code must go
/// through the wheel), and bench targets compile without `cfg(test)` —
/// the duplication is the price of keeping the oracle un-exported.
mod heap_baseline {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Scheduled<E> {
        time: u64,
        seq: u64,
        payload: E,
    }
    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.time, other.seq).cmp(&(self.time, self.seq))
        }
    }

    pub struct HeapEngine<E> {
        queue: BinaryHeap<Scheduled<E>>,
        now: u64,
        seq: u64,
    }

    impl<E> HeapEngine<E> {
        pub fn new() -> Self {
            HeapEngine {
                queue: BinaryHeap::new(),
                now: 0,
                seq: 0,
            }
        }
        pub fn schedule_in(&mut self, delay: u64, payload: E) {
            self.queue.push(Scheduled {
                time: self.now + delay,
                seq: self.seq,
                payload,
            });
            self.seq += 1;
        }
        pub fn pop(&mut self) -> Option<(u64, E)> {
            let ev = self.queue.pop()?;
            self.now = ev.time;
            Some((ev.time, ev.payload))
        }
    }
}

/// Event queue: calendar-queue (timing-wheel) `Engine` vs the historic
/// `BinaryHeap` at a 100k-event standing queue — the tentpole's headline
/// number (acceptance: ≥ 2× pop/push throughput).
fn event_queue(c: &mut Criterion) {
    use p2p_sim::{Engine, SimTime};
    use rand::Rng;
    use std::time::Instant;

    let standing = 100_000usize;
    let ops = 2_000_000usize;
    // The DES workload shape: mostly short delays with heavy same-tick
    // ties (ideal-network cascades), a tail of longer timers.
    let delay = |rng: &mut rand::rngs::SmallRng| -> u64 {
        match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(0..3),
            6..=8 => rng.gen_range(0..400),
            _ => rng.gen_range(0..20_000),
        }
    };

    let mut rng = small_rng(derive_seed(BENCH_SEED, 20));
    let mut wheel: Engine<u64> = Engine::new();
    for i in 0..standing {
        let d = delay(&mut rng);
        wheel.schedule_in(d, i as u64);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let (_, p) = wheel.pop().expect("standing queue");
        let d = delay(&mut rng);
        wheel.schedule_in(d, p ^ i as u64);
    }
    let wheel_rate = ops as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(wheel.len(), standing);
    let _ = wheel.now() > SimTime::ZERO;

    let mut rng = small_rng(derive_seed(BENCH_SEED, 20));
    let mut heap: heap_baseline::HeapEngine<u64> = heap_baseline::HeapEngine::new();
    for i in 0..standing {
        let d = delay(&mut rng);
        heap.schedule_in(d, i as u64);
    }
    let t0 = Instant::now();
    for i in 0..ops {
        let (_, p) = heap.pop().expect("standing queue");
        let d = delay(&mut rng);
        heap.schedule_in(d, p ^ i as u64);
    }
    let heap_rate = ops as f64 / t0.elapsed().as_secs_f64();

    let speedup = wheel_rate / heap_rate;
    println!("\n[ablation] event queue at a {standing}-event standing queue ({ops} pop+push ops)");
    println!("{:<28} {:>14}", "queue", "Mops/s");
    println!("{:<28} {:>14.2}", "BinaryHeap (historic)", heap_rate / 1e6);
    println!("{:<28} {:>14.2}", "timing wheel (Engine)", wheel_rate / 1e6);
    println!("  wheel/heap speedup: {speedup:.2}x");
    bench5_record(
        "event_queue",
        format!(
            "{{\"standing_events\": {standing}, \"ops\": {ops}, \
             \"heap_mops_per_s\": {:.3}, \"wheel_mops_per_s\": {:.3}, \"speedup\": {:.3}}}",
            heap_rate / 1e6,
            wheel_rate / 1e6,
            speedup
        ),
    );

    c.bench_function("ablation_event_queue/wheel_pop_push_100k", |b| {
        b.iter(|| {
            let (_, p) = wheel.pop().expect("standing queue");
            let d = delay(&mut rng);
            wheel.schedule_in(d, black_box(p));
        });
    });
}

/// Node state: the `NodeArena` slab (the homogeneous fast path every
/// figure runs) vs `Box`-per-node storage (the dyn fallback's layout) on a
/// million-node read-modify-write sweep.
fn node_arena(c: &mut Criterion) {
    use p2p_estimation::NodeArena;
    use p2p_overlay::NodeId;
    use std::time::Instant;

    #[derive(Default, Clone, Copy)]
    struct State {
        value: f64,
        epoch: u32,
        joined_at: u32,
    }
    trait NodeState {
        fn touch(&mut self, round: u32) -> f64;
    }
    impl NodeState for State {
        fn touch(&mut self, round: u32) -> f64 {
            if self.epoch != round {
                self.epoch = round;
                self.joined_at = round;
            }
            self.value = 0.5 * (self.value + round as f64);
            self.value
        }
    }

    let n = 1_000_000usize;
    let rounds = 5u32;
    println!("\n[ablation] per-node state sweep: {n} nodes x {rounds} rounds");
    println!("{:<28} {:>14}", "layout", "ns/node");

    let mut boxed: Vec<Box<dyn NodeState>> = (0..n)
        .map(|_| Box::new(State::default()) as Box<dyn NodeState>)
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for round in 1..=rounds {
        for s in boxed.iter_mut() {
            acc += s.touch(round);
        }
    }
    let boxed_ns = t0.elapsed().as_nanos() as f64 / (n as u32 * rounds) as f64;
    black_box(acc);
    println!("{:<28} {boxed_ns:>14.2}", "Box<dyn> per node");

    let mut arena: NodeArena<State> = NodeArena::new();
    arena.ensure(n);
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for round in 1..=rounds {
        for i in 0..n {
            acc += arena.slot(NodeId(i as u32)).touch(round);
        }
    }
    let arena_ns = t0.elapsed().as_nanos() as f64 / (n as u32 * rounds) as f64;
    black_box(acc);
    println!("{:<28} {arena_ns:>14.2}", "NodeArena slab");
    println!("  arena/boxed time ratio: {:.2}", arena_ns / boxed_ns);
    bench5_record(
        "node_arena",
        format!(
            "{{\"nodes\": {n}, \"rounds\": {rounds}, \"boxed_ns_per_node\": {boxed_ns:.2}, \
             \"arena_ns_per_node\": {arena_ns:.2}, \"speedup\": {:.3}}}",
            boxed_ns / arena_ns
        ),
    );

    c.bench_function("ablation_node_arena/slab_sweep_1m", |b| {
        let mut round = rounds;
        b.iter(|| {
            round += 1;
            let mut acc = 0.0;
            for i in 0..n {
                acc += arena.slot(NodeId(i as u32)).touch(round);
            }
            black_box(acc)
        });
    });
}

/// Message delivery: the free-list payload pool vs a fresh heap allocation
/// per in-flight message, plus the end-to-end `Network` hit rate.
fn message_pool(c: &mut Criterion) {
    use p2p_sim::{MessageKind, Network, NetworkModel, PayloadPool, SimTime};
    use std::collections::VecDeque;
    use std::time::Instant;

    type Msg = [u64; 8];
    let plateau = 10_000usize;
    let cycles = 2_000_000usize;

    // Fresh allocation per in-flight message (the historic layout: the
    // payload lives and dies with its queue entry).
    let mut ring: VecDeque<Box<Msg>> = VecDeque::with_capacity(plateau);
    for i in 0..plateau {
        ring.push_back(Box::new([i as u64; 8]));
    }
    let t0 = Instant::now();
    for i in 0..cycles {
        let m = ring.pop_front().expect("plateau");
        black_box(m[0]);
        drop(m);
        ring.push_back(Box::new([i as u64; 8]));
    }
    let fresh_ns = t0.elapsed().as_nanos() as f64 / cycles as f64;

    // The pool: same plateau, same traffic, zero steady-state allocations.
    let mut pool: PayloadPool<Msg> = PayloadPool::new();
    let mut handles: VecDeque<u32> = (0..plateau).map(|i| pool.insert([i as u64; 8])).collect();
    let t0 = Instant::now();
    for i in 0..cycles {
        let h = handles.pop_front().expect("plateau");
        let m = pool.take(h);
        black_box(m[0]);
        handles.push_back(pool.insert([i as u64; 8]));
    }
    let pooled_ns = t0.elapsed().as_nanos() as f64 / cycles as f64;

    println!(
        "\n[ablation] payload lifecycle at a {plateau}-message in-flight plateau ({cycles} cycles)"
    );
    println!("{:<28} {:>14}", "payload home", "ns/message");
    println!("{:<28} {fresh_ns:>14.2}", "Box::new per send");
    println!("{:<28} {pooled_ns:>14.2}", "free-list pool");
    println!("  pool/fresh time ratio: {:.2}", pooled_ns / fresh_ns);

    // End to end: a Network steady state — the acceptance evidence that a
    // long message-level run does zero per-send allocations.
    let model = NetworkModel::ideal().with_latency(p2p_sim::HopLatency::Constant(5.0));
    let mut net: Network<Msg> = Network::new(model, derive_seed(BENCH_SEED, 21));
    for round in 0..500u64 {
        for i in 0..1_000u32 {
            net.send(
                0,
                i,
                MessageKind::Control,
                [round, i as u64, 0, 0, 0, 0, 0, 0],
            );
        }
        while net.pop_until(SimTime((round + 1) * 5)).is_some() {}
    }
    let stats = net.engine_stats();
    println!(
        "  Network steady state: {} sends, pool hit rate {:.4} ({} allocs)",
        stats.pool_hits + stats.pool_allocs,
        stats.pool_hit_rate(),
        stats.pool_allocs
    );
    bench5_record(
        "message_pool",
        format!(
            "{{\"plateau\": {plateau}, \"cycles\": {cycles}, \"fresh_ns_per_msg\": {fresh_ns:.2}, \
             \"pooled_ns_per_msg\": {pooled_ns:.2}, \"network_pool_hit_rate\": {:.4}, \
             \"network_pool_allocs\": {}}}",
            stats.pool_hit_rate(),
            stats.pool_allocs
        ),
    );

    c.bench_function("ablation_message_pool/pooled_cycle_10k", |b| {
        b.iter(|| {
            let h = handles.pop_front().expect("plateau");
            let m = pool.take(h);
            handles.push_back(pool.insert(black_box(m)));
        });
    });
}

/// Writes the collected hot-path measurements to `target/BENCH_5.json`.
/// Registered last so every ablation above has recorded its entry.
fn bench5_snapshot(_c: &mut Criterion) {
    let entries = BENCH5.lock().unwrap().clone();
    if entries.is_empty() {
        eprintln!("[bench5] no entries recorded (filtered run?) — snapshot skipped");
        return;
    }
    p2p_bench::write_bench5(&entries);
}

// ── PR 7 memory-scale ablation ──────────────────────────────────────────

/// Collected measurements for the BENCH_6.json snapshot.
static BENCH6: std::sync::Mutex<Vec<(String, String)>> = std::sync::Mutex::new(Vec::new());

/// Engine memory at scale: full message-level `aggregation:rounds=30` runs
/// across the size curve, reporting nodes × peak RSS × events/s — the
/// PR 7 headline (CSR adjacency + flat views + batched dispatch). 100k and
/// 1M always run; the 10M acceptance point (the ~2 GiB budget) takes
/// minutes and is gated behind `P2P_BENCH_10M=1`.
///
/// Peak RSS is the *process* high-water (`VmHWM`), monotone across the
/// loop — sizes run ascending so each point's reading is dominated by its
/// own run, but the 100k row inherits whatever earlier ablations peaked at.
fn engine_memory(c: &mut Criterion) {
    use p2p_estimation::{AsyncProtocol, Heuristic, ProtocolSpec};
    use p2p_experiments::runner::run_scenario_des;
    use p2p_experiments::sink::peak_rss_kb;
    use p2p_experiments::Scenario;
    use std::time::Instant;

    let spec = ProtocolSpec::parse("aggregation:rounds=30").expect("literal spec");
    let mut sizes = vec![100_000usize, 1_000_000];
    let ten_m = std::env::var("P2P_BENCH_10M").is_ok_and(|v| v == "1");
    if ten_m {
        sizes.push(10_000_000);
    }
    println!("\n[ablation] engine memory: DES aggregation:rounds=30 across the scale curve");
    if !ten_m {
        println!("  (set P2P_BENCH_10M=1 to include the 10M acceptance point)");
    }
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>10}",
        "nodes", "events", "events/s", "peak RSS MB", "wall s"
    );
    let mut points = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let scenario = Scenario::static_network(n, 30).with_slot_reuse();
        let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
            unreachable!("aggregation spec builds the aggregation protocol")
        };
        let t0 = Instant::now();
        let trace = run_scenario_des(
            &mut p,
            &scenario,
            Heuristic::OneShot,
            derive_seed(BENCH_SEED, 22 + i as u64),
            "engine-memory",
        );
        let wall = t0.elapsed().as_secs_f64();
        let events = trace.engine.dispatched;
        let rate = events as f64 / wall;
        let rss_kb = peak_rss_kb();
        println!(
            "{n:>10} {events:>14} {:>14.0} {:>12} {wall:>10.2}",
            rate,
            rss_kb.map_or("n/a".to_string(), |kb| format!("{:.1}", kb as f64 / 1024.0)),
        );
        let rss_json = rss_kb.map_or("null".to_string(), |kb| kb.to_string());
        points.push(format!(
            "{{\"nodes\": {n}, \"events\": {events}, \"events_per_s\": {rate:.0}, \
             \"peak_rss_kb\": {rss_json}, \"wall_s\": {wall:.2}}}"
        ));
    }
    BENCH6.lock().unwrap().push((
        "engine_memory".to_string(),
        format!(
            "{{\"protocol\": \"aggregation:rounds=30\", \"steps\": 30, \
             \"includes_10m\": {ten_m}, \"points\": [{}]}}",
            points.join(", ")
        ),
    ));

    c.bench_function("ablation_engine_memory/des_aggregation_10k", |b| {
        b.iter(|| {
            let scenario = Scenario::static_network(10_000, 30).with_slot_reuse();
            let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
                unreachable!("aggregation spec builds the aggregation protocol")
            };
            black_box(run_scenario_des(
                &mut p,
                &scenario,
                Heuristic::OneShot,
                derive_seed(BENCH_SEED, 29),
                "engine-memory-timed",
            ))
        });
    });
}

/// Writes the memory-scale curve to `target/BENCH_6.json`. Registered last.
fn bench6_snapshot(_c: &mut Criterion) {
    let entries = BENCH6.lock().unwrap().clone();
    if entries.is_empty() {
        eprintln!("[bench6] no entries recorded (filtered run?) — snapshot skipped");
        return;
    }
    p2p_bench::write_bench6(&entries);
}

// ── PR 9 telemetry-overhead ablation ────────────────────────────────────

/// Collected measurements for the BENCH_7.json snapshot.
static BENCH7: std::sync::Mutex<Vec<(String, String)>> = std::sync::Mutex::new(Vec::new());

/// Process CPU time (utime + stime) in seconds, from `/proc/self/stat` —
/// `None` off Linux. The DES run is single-threaded, so the CPU-time
/// delta across a run is its cost stripped of scheduler preemption and
/// hypervisor steal, which on shared runners swing wall clock by ±20%
/// between back-to-back identical runs.
fn cpu_time_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // utime/stime are overall fields 14/15; the comm field may contain
    // spaces, so index relative to its closing paren (state is field 3).
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

/// Telemetry overhead on the BENCH_6 1M-node `engine-memory` point:
/// identical DES runs with metrics capture off and on (interval snapshots
/// every step). The gate metric is events per CPU-second where `/proc` is
/// available (wall time elsewhere) — but even CPU-time rates drift ±20%
/// over tens of seconds on shared runners (frequency scaling, cache
/// pressure), so configurations are never compared across the whole run:
/// each of five *adjacent pairs* (order alternating base/tel per pair)
/// yields its own overhead ratio, and the gate takes the median pair.
/// Slow drift then cancels within pairs instead of masquerading as
/// overhead. The budget is ≤ 5% events/s regression; `within_budget` in
/// BENCH_7.json is what CI greps, so a noisy machine shows up as data,
/// not a panic mid-bench.
fn telemetry_overhead(c: &mut Criterion) {
    use p2p_estimation::{AsyncProtocol, Heuristic, ProtocolSpec};
    use p2p_experiments::runner::{run_scenario_des_telemetry, TelemetryOpts};
    use p2p_experiments::Scenario;
    use std::time::Instant;

    let spec = ProtocolSpec::parse("aggregation:rounds=30").expect("literal spec");
    let n = 1_000_000usize;
    let seed = derive_seed(BENCH_SEED, 23);

    // Returns (events, wall s, cpu s, snapshots); cpu falls back to wall
    // off Linux so the comparison still runs, just noisier.
    let run_once = |telemetry: Option<TelemetryOpts>| -> (u64, f64, f64, usize) {
        let scenario = Scenario::static_network(n, 30).with_slot_reuse();
        let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
            unreachable!("aggregation spec builds the aggregation protocol")
        };
        let cpu0 = cpu_time_s();
        let t0 = Instant::now();
        let (trace, snaps) = run_scenario_des_telemetry(
            &mut p,
            &scenario,
            Heuristic::OneShot,
            seed,
            "telemetry-overhead",
            telemetry,
        );
        let wall = t0.elapsed().as_secs_f64();
        let cpu = match (cpu0, cpu_time_s()) {
            (Some(a), Some(b)) => b - a,
            _ => wall,
        };
        (trace.engine.dispatched, wall, cpu, snaps.len())
    };

    // One untimed warm-up (allocator, page tables, ramped clocks), then
    // five adjacent (base, telemetry) pairs, order flipped every pair so
    // neither configuration sits systematically later inside its pair.
    black_box(run_once(None));
    const PAIRS: usize = 5;
    let (mut base_events, mut tel_events, mut snapshots) = (0u64, 0u64, 0usize);
    let (mut base_wall, mut tel_wall) = (f64::INFINITY, f64::INFINITY);
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(PAIRS); // (base_rate, tel_rate)
    for k in 0..PAIRS {
        let mut base = || {
            let (ev, w, c, _) = run_once(None);
            base_events = ev;
            base_wall = base_wall.min(w);
            ev as f64 / c
        };
        let mut tel = || {
            let (ev, w, c, s) = run_once(Some(TelemetryOpts::default()));
            tel_events = ev;
            tel_wall = tel_wall.min(w);
            snapshots = s;
            ev as f64 / c
        };
        pairs.push(if k % 2 == 0 {
            let b = base();
            (b, tel())
        } else {
            let t = tel();
            (base(), t)
        });
    }
    assert_eq!(
        base_events, tel_events,
        "telemetry must not change the event schedule"
    );
    let mut overheads: Vec<f64> = pairs.iter().map(|(b, t)| 100.0 * (b - t) / b).collect();
    overheads.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = overheads[PAIRS / 2];
    let &(base_rate, tel_rate) = pairs
        .iter()
        .find(|(b, t)| 100.0 * (b - t) / b == overhead_pct)
        .unwrap_or(&pairs[0]);
    let within = overhead_pct <= 5.0;
    println!(
        "\n[ablation] telemetry overhead: 1M-node engine-memory point, median of {PAIRS} pairs"
    );
    println!("{:<28} {:>16}", "capture (median pair)", "events/cpu-s");
    println!("{:<28} {base_rate:>16.0}", "off");
    println!(
        "{:<28} {tel_rate:>16.0}",
        format!("on ({snapshots} snapshots)")
    );
    let spread: Vec<String> = overheads.iter().map(|o| format!("{o:.2}%")).collect();
    println!("  per-pair overhead (sorted): {}", spread.join(" "));
    println!(
        "  median events/cpu-s overhead: {overhead_pct:.2}% (budget 5%) — {}",
        if within {
            "within budget"
        } else {
            "OVER BUDGET"
        }
    );
    BENCH7.lock().unwrap().push((
        "telemetry_overhead".to_string(),
        format!(
            "{{\"nodes\": {n}, \"events\": {base_events}, \
             \"base_events_per_cpu_s\": {base_rate:.0}, \
             \"telemetry_events_per_cpu_s\": {tel_rate:.0}, \
             \"base_wall_s\": {base_wall:.2}, \"telemetry_wall_s\": {tel_wall:.2}, \
             \"snapshots\": {snapshots}, \"overhead_pct\": {overhead_pct:.2}, \
             \"budget_pct\": 5.0, \"within_budget\": {within}}}"
        ),
    ));

    c.bench_function("ablation_telemetry/des_aggregation_metrics_10k", |b| {
        b.iter(|| {
            let scenario = Scenario::static_network(10_000, 30).with_slot_reuse();
            let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
                unreachable!("aggregation spec builds the aggregation protocol")
            };
            black_box(run_scenario_des_telemetry(
                &mut p,
                &scenario,
                Heuristic::OneShot,
                derive_seed(BENCH_SEED, 24),
                "telemetry-overhead-timed",
                Some(TelemetryOpts::default()),
            ))
        });
    });
}

/// Writes the telemetry-overhead snapshot to `target/BENCH_7.json`.
/// Registered last.
fn bench7_snapshot(_c: &mut Criterion) {
    let entries = BENCH7.lock().unwrap().clone();
    if entries.is_empty() {
        eprintln!("[bench7] no entries recorded (filtered run?) — snapshot skipped");
        return;
    }
    p2p_bench::write_bench7(&entries);
}

// ── PR 10 shard-scaling ablation ────────────────────────────────────────

/// Collected measurements for the BENCH_8.json snapshot.
static BENCH8: std::sync::Mutex<Vec<(String, String)>> = std::sync::Mutex::new(Vec::new());

/// Shard scaling on the BENCH_6 workload moved to its home turf: the same
/// `aggregation:rounds=30` protocol on the `wan` network model (every hop
/// ≥ 1 tick, so the conservative lookahead clamp changes nothing), run at
/// `--shards 1` (the sequential wheel) and K ∈ {2, 4} through the
/// tick-barrier engine. 1M always runs; the 10M acceptance point (the
/// ≥ 2.5× target with 4+ shards) is gated behind `P2P_BENCH_10M=1` as in
/// BENCH_6.
///
/// Each K is its own deterministic result identity (different RNG stream
/// split), so events/s is each configuration's own merged dispatch count
/// over its own wall clock — not a fixed-work comparison. `cores` records
/// `available_parallelism` at measurement time: the speedup column only
/// means something when it is ≥ the shard count, and the committed
/// snapshot says so rather than hiding the host. Peak RSS is the process
/// high-water (`VmHWM`), monotone across the loop — shard counts run
/// ascending per size, sizes ascending overall.
fn shard_scaling(c: &mut Criterion) {
    use p2p_estimation::{AsyncProtocol, Deployment, Heuristic, ProtocolSpec};
    use p2p_experiments::runner::run_scenario_des;
    use p2p_experiments::sink::peak_rss_kb;
    use p2p_experiments::{run_scenario_des_sharded, Scenario, ShardOpts};
    use p2p_sim::NetworkModel;
    use std::time::Instant;

    let spec = ProtocolSpec::parse("aggregation:rounds=30").expect("literal spec");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sizes = vec![1_000_000usize];
    let ten_m = std::env::var("P2P_BENCH_10M").is_ok_and(|v| v == "1");
    if ten_m {
        sizes.push(10_000_000);
    }
    println!("\n[ablation] shard scaling: DES aggregation:rounds=30 on wan, shards 1/2/4");
    if !ten_m {
        println!("  (set P2P_BENCH_10M=1 to include the 10M acceptance point)");
    }
    println!("  ({cores} core(s) available — speedup needs cores ≥ shards to show)");
    println!(
        "{:>10} {:>7} {:>14} {:>14} {:>12} {:>10}",
        "nodes", "shards", "events", "events/s", "peak RSS MB", "wall s"
    );
    let mut size_rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let scenario = Scenario::static_network(n, 30)
            .with_slot_reuse()
            .with_network(NetworkModel::wan());
        let seed = derive_seed(BENCH_SEED, 40 + i as u64);
        let mut points = Vec::new();
        let mut rates = Vec::new();
        for &k in &[1u32, 2, 4] {
            let t0 = Instant::now();
            let trace = if k == 1 {
                let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
                    unreachable!("aggregation spec builds the aggregation protocol")
                };
                run_scenario_des(&mut p, &scenario, Heuristic::OneShot, seed, "shard-scaling")
            } else {
                let make = |_: u32, view| {
                    let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
                        unreachable!("aggregation spec builds the aggregation protocol")
                    };
                    p.deployment = Deployment::Shard(view);
                    p
                };
                run_scenario_des_sharded(
                    make,
                    &scenario,
                    Heuristic::OneShot,
                    seed,
                    "shard-scaling",
                    ShardOpts {
                        shards: k,
                        workers: None,
                    },
                    None,
                )
                .0
            };
            let wall = t0.elapsed().as_secs_f64();
            let events = trace.engine.dispatched;
            let rate = events as f64 / wall;
            rates.push((k, rate));
            let rss_kb = peak_rss_kb();
            println!(
                "{n:>10} {k:>7} {events:>14} {rate:>14.0} {:>12} {wall:>10.2}",
                rss_kb.map_or("n/a".to_string(), |kb| format!("{:.1}", kb as f64 / 1024.0)),
            );
            let rss_json = rss_kb.map_or("null".to_string(), |kb| kb.to_string());
            points.push(format!(
                "{{\"shards\": {k}, \"events\": {events}, \"events_per_s\": {rate:.0}, \
                 \"peak_rss_kb\": {rss_json}, \"wall_s\": {wall:.2}}}"
            ));
        }
        let base = rates[0].1;
        let speedup_4 = rates
            .iter()
            .find(|&&(k, _)| k == 4)
            .map_or(f64::NAN, |&(_, r)| r / base);
        size_rows.push(format!(
            "{{\"nodes\": {n}, \"speedup_4_shards\": {speedup_4:.2}, \"points\": [{}]}}",
            points.join(", ")
        ));
    }
    BENCH8.lock().unwrap().push((
        "shard_scaling".to_string(),
        format!(
            "{{\"protocol\": \"aggregation:rounds=30\", \"network\": \"wan\", \"steps\": 30, \
             \"cores\": {cores}, \"includes_10m\": {ten_m}, \"target_speedup_4_shards\": 2.5, \
             \"sizes\": [{}]}}",
            size_rows.join(", ")
        ),
    ));

    c.bench_function("ablation_shard_scaling/des_sharded_20k_k4", |b| {
        b.iter(|| {
            let scenario = Scenario::static_network(20_000, 30)
                .with_slot_reuse()
                .with_network(NetworkModel::wan());
            let make = |_: u32, view| {
                let AsyncProtocol::Aggregation(mut p) = spec.build_async() else {
                    unreachable!("aggregation spec builds the aggregation protocol")
                };
                p.deployment = Deployment::Shard(view);
                p
            };
            black_box(run_scenario_des_sharded(
                make,
                &scenario,
                Heuristic::OneShot,
                derive_seed(BENCH_SEED, 49),
                "shard-scaling-timed",
                ShardOpts {
                    shards: 4,
                    workers: None,
                },
                None,
            ))
        });
    });
}

/// Writes the shard-scaling curve to `target/BENCH_8.json`. Registered
/// last.
fn bench8_snapshot(_c: &mut Criterion) {
    let entries = BENCH8.lock().unwrap().clone();
    if entries.is_empty() {
        eprintln!("[bench8] no entries recorded (filtered run?) — snapshot skipped");
        return;
    }
    p2p_bench::write_bench8(&entries);
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = l_sweep, t_bias, topology, estimator, min_hops, hs_target_mode, oracle_distances,
        delay, churn_removal, ops_at_lookup, workload_generation,
        event_queue, node_arena, message_pool, engine_memory, telemetry_overhead, shard_scaling,
        bench5_snapshot, bench6_snapshot, bench7_snapshot, bench8_snapshot
}
criterion_main!(benches);
