//! Shared plumbing for the criterion benches.
//!
//! Every bench target does two jobs:
//!
//! 1. **Regenerate its figures/table** via `p2p-experiments` at
//!    [`ExperimentScale::from_env`] (set `P2P_PAPER_SCALE=1` for the full
//!    100k/1M sizes) and drop the CSVs under `target/figures/`;
//! 2. **Time the underlying primitive** (one estimation, one round, one
//!    spread…) with criterion at a fixed reduced size, so `cargo bench`
//!    also tracks implementation performance over time.

use p2p_experiments::ExperimentScale;
use p2p_stats::series::Figure;
use std::path::PathBuf;
use std::time::Duration;

/// The workspace `target/figures` directory, robust to the bench cwd being
/// the package directory.
pub fn figures_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("figures");
    }
    // crates/bench -> workspace root/target
    PathBuf::from("../../target/figures")
}

/// Saves a figure CSV and prints a one-line summary per series.
pub fn emit_figure(fig: &Figure) {
    match fig.save_csv(&figures_dir()) {
        Ok(path) => println!("[figure] {} -> {}", fig.id, path.display()),
        Err(e) => eprintln!("[figure] {}: CSV write failed: {e}", fig.id),
    }
    for s in &fig.series {
        let (lo, hi) = s.y_range().unwrap_or((f64::NAN, f64::NAN));
        println!(
            "  {:<24} {:>5} points, y in [{:.1}, {:.1}]",
            s.name,
            s.len(),
            lo,
            hi
        );
    }
}

/// The scale used for figure regeneration inside benches.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::from_env()
}

/// Criterion settings shared by all targets: small samples, short windows —
/// the timed bodies are macroscopic simulations, not nano-kernels.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// Master seed for all bench-generated data.
pub const BENCH_SEED: u64 = 20060619;

/// Where the hot-path benchmark snapshot lands: `target/BENCH_5.json`
/// (sibling of `target/figures`). CI uploads it as an artifact; the copy
/// committed at the repo root is the reference measurement.
pub fn bench5_path() -> PathBuf {
    figures_dir()
        .parent()
        .map(|p| p.join("BENCH_5.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_5.json"))
}

/// Writes the hot-path snapshot as a JSON object of `key → entry` (entries
/// are pre-rendered JSON values; the writer is hand-rolled like every
/// serializer in this workspace).
pub fn write_bench5(entries: &[(String, String)]) {
    write_snapshot("bench5", &bench5_path(), entries);
}

/// Where the memory-scale snapshot lands: `target/BENCH_6.json`, the
/// nodes × peak-RSS × events/s curve from the `engine-memory` ablation.
/// Same convention as [`bench5_path`]: CI uploads the fresh copy, the one
/// committed at the repo root is the reference measurement.
pub fn bench6_path() -> PathBuf {
    figures_dir()
        .parent()
        .map(|p| p.join("BENCH_6.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_6.json"))
}

/// Writes the memory-scale snapshot (see [`write_bench5`] for the format).
pub fn write_bench6(entries: &[(String, String)]) {
    write_snapshot("bench6", &bench6_path(), entries);
}

/// Where the telemetry-overhead snapshot lands: `target/BENCH_7.json`,
/// events/s with and without interval metrics capture on the 1M-node
/// `engine-memory` configuration. Same convention as [`bench5_path`].
pub fn bench7_path() -> PathBuf {
    figures_dir()
        .parent()
        .map(|p| p.join("BENCH_7.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_7.json"))
}

/// Writes the telemetry-overhead snapshot (see [`write_bench5`] for the
/// format).
pub fn write_bench7(entries: &[(String, String)]) {
    write_snapshot("bench7", &bench7_path(), entries);
}

/// Where the shard-scaling snapshot lands: `target/BENCH_8.json`,
/// shards × events/s × peak RSS from the `shard_scaling` ablation (the
/// tick-barrier parallel engine vs the sequential wheel on the same
/// scenario). Same convention as [`bench5_path`].
pub fn bench8_path() -> PathBuf {
    figures_dir()
        .parent()
        .map(|p| p.join("BENCH_8.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_8.json"))
}

/// Writes the shard-scaling snapshot (see [`write_bench5`] for the format).
pub fn write_bench8(entries: &[(String, String)]) {
    write_snapshot("bench8", &bench8_path(), entries);
}

fn write_snapshot(tag: &str, path: &std::path::Path, entries: &[(String, String)]) {
    let mut out = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, out) {
        Ok(()) => println!("[{tag}] snapshot -> {}", path.display()),
        Err(e) => eprintln!("[{tag}] {}: write failed: {e}", path.display()),
    }
}
