//! Shared plumbing for the criterion benches.
//!
//! Every bench target does two jobs:
//!
//! 1. **Regenerate its figures/table** via `p2p-experiments` at
//!    [`ExperimentScale::from_env`] (set `P2P_PAPER_SCALE=1` for the full
//!    100k/1M sizes) and drop the CSVs under `target/figures/`;
//! 2. **Time the underlying primitive** (one estimation, one round, one
//!    spread…) with criterion at a fixed reduced size, so `cargo bench`
//!    also tracks implementation performance over time.

use p2p_experiments::ExperimentScale;
use p2p_stats::series::Figure;
use std::path::PathBuf;
use std::time::Duration;

/// The workspace `target/figures` directory, robust to the bench cwd being
/// the package directory.
pub fn figures_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("figures");
    }
    // crates/bench -> workspace root/target
    PathBuf::from("../../target/figures")
}

/// Saves a figure CSV and prints a one-line summary per series.
pub fn emit_figure(fig: &Figure) {
    match fig.save_csv(&figures_dir()) {
        Ok(path) => println!("[figure] {} -> {}", fig.id, path.display()),
        Err(e) => eprintln!("[figure] {}: CSV write failed: {e}", fig.id),
    }
    for s in &fig.series {
        let (lo, hi) = s.y_range().unwrap_or((f64::NAN, f64::NAN));
        println!(
            "  {:<24} {:>5} points, y in [{:.1}, {:.1}]",
            s.name,
            s.len(),
            lo,
            hi
        );
    }
}

/// The scale used for figure regeneration inside benches.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale::from_env()
}

/// Criterion settings shared by all targets: small samples, short windows —
/// the timed bodies are macroscopic simulations, not nano-kernels.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// Master seed for all bench-generated data.
pub const BENCH_SEED: u64 = 20060619;
